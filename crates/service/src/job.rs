//! Job identities, priorities and lifecycle states.
//!
//! A **job** is one queued [`ctori_engine::RunSpec`] execution.  Jobs move
//! through the state machine
//!
//! ```text
//! queued ──▶ running ──▶ done
//!    │           └─────▶ failed
//!    └─────▶ cancelled
//! ```
//!
//! `done`, `failed` and `cancelled` are terminal.  All three identity
//! types render to single tokens (and parse back) so they can travel on
//! the wire protocol's header lines.

use crate::error::ServiceError;

/// Identifier of a submitted job, unique within one scheduler instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(u64);

impl JobId {
    /// Wraps a raw id (used by the scheduler and the wire protocol).
    pub(crate) fn new(raw: u64) -> Self {
        JobId(raw)
    }

    /// The raw numeric id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::str::FromStr for JobId {
    type Err = ServiceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.parse()
            .map(JobId)
            .map_err(|_| ServiceError::Protocol(format!("{s:?} is not a job id")))
    }
}

/// Scheduling priority of a job.  Higher priorities are dequeued first;
/// within one priority, jobs run in submission order (FIFO).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Priority {
    /// Background work: dequeued only when nothing else is waiting.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Jumps ahead of all queued normal/low jobs.
    High,
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        })
    }
}

impl std::str::FromStr for Priority {
    type Err = ServiceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "low" => Ok(Priority::Low),
            "normal" => Ok(Priority::Normal),
            "high" => Ok(Priority::High),
            other => Err(ServiceError::Protocol(format!(
                "{other:?} is not a priority (low/normal/high)"
            ))),
        }
    }
}

/// Lifecycle state of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JobState {
    /// Waiting in the submission queue.
    Queued,
    /// Claimed by a worker and executing.
    Running,
    /// Finished; the outcome is available.
    Done,
    /// The execution panicked or was otherwise aborted.
    Failed,
    /// Cancelled while still queued; it will never run.
    Cancelled,
}

impl JobState {
    /// Whether the state is final (`done`, `failed` or `cancelled`).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        })
    }
}

impl std::str::FromStr for JobState {
    type Err = ServiceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "queued" => Ok(JobState::Queued),
            "running" => Ok(JobState::Running),
            "done" => Ok(JobState::Done),
            "failed" => Ok(JobState::Failed),
            "cancelled" => Ok(JobState::Cancelled),
            other => Err(ServiceError::Protocol(format!(
                "{other:?} is not a job state"
            ))),
        }
    }
}

/// A point-in-time snapshot of one job, as reported by `STATUS`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobStatus {
    /// Where the job is in its lifecycle.
    pub state: JobState,
    /// Whether a `done` outcome was served from the result cache instead
    /// of a fresh execution.
    pub from_cache: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities_round_trip_as_tokens() {
        let id = JobId::new(42);
        assert_eq!(id.to_string().parse::<JobId>().unwrap(), id);
        for p in [Priority::Low, Priority::Normal, Priority::High] {
            assert_eq!(p.to_string().parse::<Priority>().unwrap(), p);
        }
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            assert_eq!(s.to_string().parse::<JobState>().unwrap(), s);
        }
        assert!("urgent".parse::<Priority>().is_err());
        assert!("gone".parse::<JobState>().is_err());
        assert!("x1".parse::<JobId>().is_err());
    }

    #[test]
    fn priorities_order_and_states_terminate() {
        assert!(Priority::High > Priority::Normal);
        assert!(Priority::Normal > Priority::Low);
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
    }
}
