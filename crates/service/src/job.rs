//! Job identities, priorities and lifecycle states.
//!
//! A **job** is one queued [`ctori_engine::RunSpec`] execution.  The
//! lifecycle machinery — [`JobState`], [`Priority`], the [`JobStatus`]
//! snapshot — is shared with the engine's execution API
//! ([`ctori_engine::exec`]): the service scheduler is a thin wrapper over
//! the engine's [`ctori_engine::LocalExecutor`] pool, so both layers
//! speak the exact same state machine
//!
//! ```text
//! queued ──▶ running ──▶ done
//!    │           └─────▶ failed
//!    └─────▶ cancelled
//! ```
//!
//! What stays service-local is [`JobId`]: the wire-protocol identity a
//! client holds across `STATUS`/`RESULT`/`WATCH`/`CANCEL` requests.  All
//! identity types render to single tokens (and parse back) so they can
//! travel on the protocol's header lines.

use crate::error::ServiceError;

pub use ctori_engine::exec::{JobState, JobStatus, Priority};

/// Identifier of a submitted job, unique within one scheduler instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(u64);

impl JobId {
    /// Wraps a raw id (used by the scheduler and the wire protocol).
    pub(crate) fn new(raw: u64) -> Self {
        JobId(raw)
    }

    /// The raw numeric id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::str::FromStr for JobId {
    type Err = ServiceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.parse()
            .map(JobId)
            .map_err(|_| ServiceError::Protocol(format!("{s:?} is not a job id")))
    }
}

/// Parses a [`Priority`] wire token, as a [`ServiceError`].
pub(crate) fn parse_priority(s: &str) -> Result<Priority, ServiceError> {
    Priority::parse_token(s)
        .ok_or_else(|| ServiceError::Protocol(format!("{s:?} is not a priority (low/normal/high)")))
}

/// Parses a [`JobState`] wire token, as a [`ServiceError`].
pub(crate) fn parse_job_state(s: &str) -> Result<JobState, ServiceError> {
    JobState::parse_token(s)
        .ok_or_else(|| ServiceError::Protocol(format!("{s:?} is not a job state")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities_round_trip_as_tokens() {
        let id = JobId::new(42);
        assert_eq!(id.to_string().parse::<JobId>().unwrap(), id);
        for p in [Priority::Low, Priority::Normal, Priority::High] {
            assert_eq!(parse_priority(&p.to_string()).unwrap(), p);
        }
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            assert_eq!(parse_job_state(&s.to_string()).unwrap(), s);
        }
        assert!(parse_priority("urgent").is_err());
        assert!(parse_job_state("gone").is_err());
        assert!("x1".parse::<JobId>().is_err());
    }

    #[test]
    fn priorities_order_and_states_terminate() {
        assert!(Priority::High > Priority::Normal);
        assert!(Priority::Normal > Priority::Low);
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
    }
}
