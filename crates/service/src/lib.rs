//! # ctori-service
//!
//! A batch simulation **service** over the declarative execution API of
//! [`ctori_engine`]: long-running, multi-client, std-only (loopback TCP —
//! no dependencies beyond the workspace).
//!
//! The paper's dynamics are fully described by plain-data
//! [`ctori_engine::RunSpec`]s with a canonical text form, which makes them
//! natural *service payloads*: a client ships the spec text, the service
//! schedules it, and the memoizable result is the equally text-serialisable
//! [`ctori_engine::RunOutcome`].  Three layers compose:
//!
//! * [`scheduler`] — a thin wrapper over the engine's
//!   [`ctori_engine::LocalExecutor`] worker pool (bounded priority queue,
//!   job states `queued → running → done/failed`, cancellation, graceful
//!   drain-on-shutdown), adding wire-protocol job ids and the result
//!   cache;
//! * [`cache`] — a content-addressed result cache keyed by
//!   [`ctori_engine::RunSpec::canonical_key`], so identical specs across
//!   clients and sweeps return one memoized outcome; bounded with LRU
//!   eviction and observable hit/miss/eviction counters;
//! * [`server`] / [`client`] / [`protocol`] — a line-framed TCP front-end
//!   over `std::net` (`SUBMIT`/`SWEEP`/`STATUS`/`RESULT`/`WATCH`/
//!   `CANCEL`/`STATS`/`SHUTDOWN`) whose payloads are exactly the engine's
//!   spec, outcome and event text forms, a blocking [`ServiceClient`],
//!   and the `ctori-serve` binary;
//! * [`remote`] — [`RemoteExecutor`], the TCP backend of the engine's
//!   backend-agnostic [`ctori_engine::Executor`] API: the same caller
//!   code that drives the in-process pool drives a `ctori-serve`
//!   process, with live progress streamed through the `WATCH` verb.
//!
//! ## Quickstart
//!
//! Serve (the binary accepts `--addr`, `--workers`, `--queue`,
//! `--cache`):
//!
//! ```text
//! cargo run --release -p ctori-service --bin ctori-serve -- --addr 127.0.0.1:7171
//! ```
//!
//! Talk to it:
//!
//! ```no_run
//! use ctori_engine::RunSpec;
//! use ctori_service::ServiceClient;
//!
//! let mut client = ServiceClient::connect("127.0.0.1:7171").unwrap();
//! let spec = RunSpec::from_text(
//!     "topology: toroidal-mesh 32x32\nrule: smp\nseed: density color=1 palette=4 fraction=0.4 rng=7\n",
//! ).unwrap();
//! let id = client.submit(&spec).unwrap();
//! let outcome = client.result(id).unwrap(); // blocks until done
//! assert!(outcome.rounds > 0);
//! let stats = client.stats().unwrap();      // cache hits/misses, queue depth …
//! assert_eq!(stats.done, 1);
//! ```
//!
//! Or embed the whole service in-process with [`Server::bind`] +
//! [`Server::serve`] on an ephemeral loopback port — that is how the
//! integration tests and `examples/service_roundtrip.rs` run without any
//! fixed port.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod cache;
pub mod client;
pub mod error;
pub mod job;
pub mod protocol;
pub mod remote;
pub mod scheduler;
pub mod server;
pub mod stats;

pub use cache::ResultCache;
pub use client::ServiceClient;
pub use error::ServiceError;
pub use job::{JobId, JobState, JobStatus, Priority};
pub use protocol::{Request, Response};
pub use remote::RemoteExecutor;
pub use scheduler::{Scheduler, SchedulerConfig};
pub use server::{Server, ServiceConfig};
pub use stats::{CacheStats, ServiceStats};
