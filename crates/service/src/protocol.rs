//! The line-framed TCP wire protocol.
//!
//! Every request is one ASCII **header line**; requests that carry a
//! payload (spec or outcome text — the existing
//! [`ctori_engine::RunSpec::to_text`] / [`ctori_engine::RunOutcome::to_text`]
//! forms) follow it with a **block**: the payload lines, dot-stuffed
//! SMTP-style (a payload line starting with `.` is sent with an extra
//! leading `.`), terminated by a line holding a single `.`.
//!
//! | request | payload | success reply |
//! |---------|---------|---------------|
//! | `SUBMIT [priority=P]` | one spec | `OK job <id>` |
//! | `SWEEP [priority=P]` | specs separated by `--` lines | `OK jobs <id>…` |
//! | `STATUS <id>` | — | `OK status <state> [cached]` |
//! | `RESULT <id> [wait]` | — | `OK result` + outcome block |
//! | `WATCH <id> [since-round]` | — | `OK events` + event block |
//! | `CANCEL <id>` | — | `OK cancelled` |
//! | `STATS` | — | `OK stats` + stats block |
//! | `METRICS` | — | `OK metrics` + metrics block |
//! | `TRACE <id>` | — | `OK trace` + span block |
//! | `SHUTDOWN` | — | `OK bye`, then the server drains and exits |
//!
//! `WATCH` is the **polled progress stream** of the execution API: the
//! reply block holds the job's buffered
//! [`ctori_engine::RunEvent`]s — all of them without `since-round`,
//! otherwise the progress events beyond that round plus the terminal
//! event once one exists.  A client repeats `WATCH <id> <last-seen-round>`
//! until a terminal event arrives; progress rounds are strictly
//! increasing across the polls.
//!
//! Failures reply `ERR <code> <message>` on one line (e.g. `queue-full`,
//! `unknown-job`, `not-done`, `job-failed`, `bad-spec`, `bad-request`).
//! Both sides are symmetric: [`Request`] and [`Response`] render with
//! `wire()` and rebuild with `from_parts(header, payload)`, so the
//! protocol round-trips and is testable without a socket.

use crate::error::ServiceError;
use crate::job::{parse_job_state, parse_priority, JobId, JobStatus, Priority};
use crate::stats::ServiceStats;
use ctori_engine::exec::{events_from_text, events_to_text, RunEvent};
use ctori_engine::{JobTrace, MetricsSnapshot};
use std::io::BufRead;

/// The line separating two specs inside a `SWEEP` payload.
pub const SWEEP_SEPARATOR: &str = "--";

/// The line terminating a payload block.
pub const END_OF_BLOCK: &str = ".";

// ---------------------------------------------------------------------------
// Block framing
// ---------------------------------------------------------------------------

/// Renders a payload as a dot-stuffed, dot-terminated block.
pub fn encode_block(payload: &str) -> String {
    let mut out = String::with_capacity(payload.len() + 8);
    for line in payload.lines() {
        if line.starts_with('.') {
            out.push('.');
        }
        out.push_str(line);
        out.push('\n');
    }
    out.push_str(END_OF_BLOCK);
    out.push('\n');
    out
}

/// One decoded line of an incoming block.
pub enum BlockLine {
    /// A payload line (already un-stuffed).
    Data(String),
    /// The `.` terminator.
    End,
}

/// Decodes one raw line of an incoming block.
pub fn decode_block_line(line: &str) -> BlockLine {
    if line == END_OF_BLOCK {
        BlockLine::End
    } else if let Some(stuffed) = line.strip_prefix('.') {
        BlockLine::Data(stuffed.to_string())
    } else {
        BlockLine::Data(line.to_string())
    }
}

/// Reads one `\n`-terminated line, trimming the terminator (and a
/// preceding `\r`).  Returns `None` at a clean EOF.
pub fn read_line(reader: &mut impl BufRead) -> Result<Option<String>, ServiceError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

/// Reads a whole block (used by the blocking client, which sets no read
/// timeout).  Errors if the stream ends before the terminator.
pub fn read_block(reader: &mut impl BufRead) -> Result<String, ServiceError> {
    let mut payload = String::new();
    loop {
        let line = read_line(reader)?
            .ok_or_else(|| ServiceError::Protocol("connection closed inside a block".into()))?;
        match decode_block_line(&line) {
            BlockLine::End => return Ok(payload),
            BlockLine::Data(data) => {
                payload.push_str(&data);
                payload.push('\n');
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A client request, as structured data.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Request {
    /// Submit one spec for execution.
    Submit {
        /// Queue priority.
        priority: Priority,
        /// The spec in [`ctori_engine::RunSpec::to_text`] form.
        spec_text: String,
    },
    /// Submit a batch of specs atomically under one priority.
    Sweep {
        /// Queue priority shared by the whole batch.
        priority: Priority,
        /// The specs, each in text form.
        spec_texts: Vec<String>,
    },
    /// Query a job's lifecycle state.
    Status {
        /// The job.
        id: JobId,
    },
    /// Fetch a job's outcome; with `wait`, block until it is terminal.
    Result {
        /// The job.
        id: JobId,
        /// Whether to block server-side until the job terminates.
        wait: bool,
    },
    /// Poll a job's buffered progress events.
    Watch {
        /// The job.
        id: JobId,
        /// Only report progress beyond this round (`None` = everything,
        /// including the `started` event).
        since: Option<usize>,
    },
    /// Cancel a queued job.
    Cancel {
        /// The job.
        id: JobId,
    },
    /// Fetch the service counters.
    Stats,
    /// Fetch the full telemetry exposition (the metrics registry in
    /// [`ctori_engine::MetricsSnapshot::to_text`] form).
    Metrics,
    /// Fetch a job's lifecycle span ring (the
    /// [`ctori_engine::JobTrace::to_text`] form).
    Trace {
        /// The job.
        id: JobId,
    },
    /// Begin a graceful drain: the reply is `OK bye`, then the server
    /// finishes every admitted job and exits.
    Shutdown,
}

impl Request {
    /// Renders the full wire form (header line plus payload block, when
    /// the verb carries one).
    pub fn wire(&self) -> String {
        match self {
            Request::Submit {
                priority,
                spec_text,
            } => format!("SUBMIT priority={priority}\n{}", encode_block(spec_text)),
            Request::Sweep {
                priority,
                spec_texts,
            } => {
                let mut payload = String::new();
                for (i, text) in spec_texts.iter().enumerate() {
                    if i > 0 {
                        payload.push_str(SWEEP_SEPARATOR);
                        payload.push('\n');
                    }
                    payload.push_str(text);
                    if !text.ends_with('\n') {
                        payload.push('\n');
                    }
                }
                format!("SWEEP priority={priority}\n{}", encode_block(&payload))
            }
            Request::Status { id } => format!("STATUS {id}\n"),
            Request::Result { id, wait } => {
                if *wait {
                    format!("RESULT {id} wait\n")
                } else {
                    format!("RESULT {id}\n")
                }
            }
            Request::Watch { id, since } => match since {
                Some(round) => format!("WATCH {id} {round}\n"),
                None => format!("WATCH {id}\n"),
            },
            Request::Cancel { id } => format!("CANCEL {id}\n"),
            Request::Stats => "STATS\n".into(),
            Request::Metrics => "METRICS\n".into(),
            Request::Trace { id } => format!("TRACE {id}\n"),
            Request::Shutdown => "SHUTDOWN\n".into(),
        }
    }

    /// The request's verb token, as it appears on the wire — the label
    /// the server's per-verb request counters are keyed by.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Submit { .. } => "SUBMIT",
            Request::Sweep { .. } => "SWEEP",
            Request::Status { .. } => "STATUS",
            Request::Result { .. } => "RESULT",
            Request::Watch { .. } => "WATCH",
            Request::Cancel { .. } => "CANCEL",
            Request::Stats => "STATS",
            Request::Metrics => "METRICS",
            Request::Trace { .. } => "TRACE",
            Request::Shutdown => "SHUTDOWN",
        }
    }

    /// Whether a request header announces a payload block.
    pub fn header_needs_payload(header: &str) -> bool {
        matches!(
            header.split_whitespace().next(),
            Some("SUBMIT") | Some("SWEEP")
        )
    }

    /// Rebuilds a request from a header line and its payload block.
    pub fn from_parts(header: &str, payload: Option<&str>) -> Result<Request, ServiceError> {
        let tokens: Vec<&str> = header.split_whitespace().collect();
        let arity = |expected: std::ops::RangeInclusive<usize>| -> Result<(), ServiceError> {
            if expected.contains(&tokens.len()) {
                Ok(())
            } else {
                Err(ServiceError::Protocol(format!(
                    "malformed request header {header:?}"
                )))
            }
        };
        let priority_of = |token: Option<&&str>| -> Result<Priority, ServiceError> {
            match token {
                None => Ok(Priority::Normal),
                Some(token) => match token.split_once('=') {
                    Some(("priority", value)) => parse_priority(value),
                    _ => Err(ServiceError::Protocol(format!(
                        "expected priority=..., got {token:?}"
                    ))),
                },
            }
        };
        let payload_of = || -> Result<&str, ServiceError> {
            payload.ok_or_else(|| ServiceError::Protocol(format!("{header:?} needs a payload")))
        };
        match tokens.first().copied() {
            Some("SUBMIT") => {
                arity(1..=2)?;
                Ok(Request::Submit {
                    priority: priority_of(tokens.get(1))?,
                    spec_text: payload_of()?.to_string(),
                })
            }
            Some("SWEEP") => {
                arity(1..=2)?;
                let priority = priority_of(tokens.get(1))?;
                let mut spec_texts = Vec::new();
                let mut current = String::new();
                for line in payload_of()?.lines() {
                    if line == SWEEP_SEPARATOR {
                        spec_texts.push(std::mem::take(&mut current));
                    } else {
                        current.push_str(line);
                        current.push('\n');
                    }
                }
                // A trailing all-whitespace segment is dropped — and so
                // is an entirely empty payload, so `spec_texts: []` wires
                // round-trip to `[]` and the scheduler (not a bad-spec
                // parse of "") reports the empty sweep.
                if !current.trim().is_empty() {
                    spec_texts.push(current);
                }
                Ok(Request::Sweep {
                    priority,
                    spec_texts,
                })
            }
            Some("STATUS") => {
                arity(2..=2)?;
                Ok(Request::Status {
                    id: tokens[1].parse()?,
                })
            }
            Some("RESULT") => {
                arity(2..=3)?;
                let wait = match tokens.get(2) {
                    None => false,
                    Some(&"wait") => true,
                    Some(other) => {
                        return Err(ServiceError::Protocol(format!(
                            "unknown RESULT flag {other:?}"
                        )))
                    }
                };
                Ok(Request::Result {
                    id: tokens[1].parse()?,
                    wait,
                })
            }
            Some("WATCH") => {
                arity(2..=3)?;
                let since = match tokens.get(2) {
                    None => None,
                    Some(raw) => Some(raw.parse().map_err(|_| {
                        ServiceError::Protocol(format!("{raw:?} is not a round number"))
                    })?),
                };
                Ok(Request::Watch {
                    id: tokens[1].parse()?,
                    since,
                })
            }
            Some("CANCEL") => {
                arity(2..=2)?;
                Ok(Request::Cancel {
                    id: tokens[1].parse()?,
                })
            }
            Some("STATS") => {
                arity(1..=1)?;
                Ok(Request::Stats)
            }
            Some("METRICS") => {
                arity(1..=1)?;
                Ok(Request::Metrics)
            }
            Some("TRACE") => {
                arity(2..=2)?;
                Ok(Request::Trace {
                    id: tokens[1].parse()?,
                })
            }
            Some("SHUTDOWN") => {
                arity(1..=1)?;
                Ok(Request::Shutdown)
            }
            Some(other) => Err(ServiceError::Protocol(format!("unknown command {other:?}"))),
            None => Err(ServiceError::Protocol("empty request".into())),
        }
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// A server reply, as structured data.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Response {
    /// `SUBMIT` accepted.
    Job(JobId),
    /// `SWEEP` accepted.
    Jobs(Vec<JobId>),
    /// `STATUS` snapshot.
    Status(JobStatus),
    /// `RESULT` payload: the outcome in
    /// [`ctori_engine::RunOutcome::to_text`] form.
    Result(String),
    /// `WATCH` payload: the buffered events, in submission order
    /// (possibly empty while a job is queued or between samples).
    Events(Vec<RunEvent>),
    /// `CANCEL` succeeded.
    Cancelled,
    /// `STATS` payload.
    Stats(ServiceStats),
    /// `METRICS` payload: the full registry exposition.
    Metrics(MetricsSnapshot),
    /// `TRACE` payload: one job's lifecycle span ring.
    Trace(JobTrace),
    /// `SHUTDOWN` acknowledged.
    Bye,
    /// Any failure.
    Error {
        /// Machine-readable code (e.g. `queue-full`).
        code: String,
        /// Human-readable message (single line).
        message: String,
    },
}

impl Response {
    /// Renders the full wire form.
    pub fn wire(&self) -> String {
        match self {
            Response::Job(id) => format!("OK job {id}\n"),
            Response::Jobs(ids) => {
                let mut out = String::from("OK jobs");
                for id in ids {
                    out.push(' ');
                    out.push_str(&id.to_string());
                }
                out.push('\n');
                out
            }
            Response::Status(status) => format!(
                "OK status {}{}\n",
                status.state,
                if status.from_cache { " cached" } else { "" }
            ),
            Response::Result(outcome_text) => {
                format!("OK result\n{}", encode_block(outcome_text))
            }
            Response::Events(events) => {
                format!("OK events\n{}", encode_block(&events_to_text(events)))
            }
            Response::Cancelled => "OK cancelled\n".into(),
            Response::Stats(stats) => format!("OK stats\n{}", encode_block(&stats.to_text())),
            Response::Metrics(snapshot) => {
                format!("OK metrics\n{}", encode_block(&snapshot.to_text()))
            }
            Response::Trace(trace) => format!("OK trace\n{}", encode_block(&trace.to_text())),
            Response::Bye => "OK bye\n".into(),
            Response::Error { code, message } => {
                format!("ERR {code} {}\n", message.replace('\n', "; "))
            }
        }
    }

    /// Whether a response header announces a payload block.
    pub fn header_needs_payload(header: &str) -> bool {
        header == "OK result"
            || header == "OK stats"
            || header == "OK events"
            || header == "OK metrics"
            || header == "OK trace"
    }

    /// Rebuilds a response from a header line and its payload block.
    pub fn from_parts(header: &str, payload: Option<&str>) -> Result<Response, ServiceError> {
        if let Some(rest) = header.strip_prefix("ERR ") {
            let (code, message) = rest.split_once(' ').unwrap_or((rest, ""));
            return Ok(Response::Error {
                code: code.to_string(),
                message: message.to_string(),
            });
        }
        let tokens: Vec<&str> = header.split_whitespace().collect();
        let malformed = || ServiceError::Protocol(format!("malformed response header {header:?}"));
        if tokens.first() != Some(&"OK") {
            return Err(malformed());
        }
        match tokens.get(1).copied() {
            Some("job") if tokens.len() == 3 => Ok(Response::Job(tokens[2].parse()?)),
            Some("jobs") => Ok(Response::Jobs(
                tokens[2..]
                    .iter()
                    .map(|t| t.parse())
                    .collect::<Result<_, _>>()?,
            )),
            Some("status") if (3..=4).contains(&tokens.len()) => {
                let state = parse_job_state(tokens[2])?;
                let from_cache = match tokens.get(3) {
                    None => false,
                    Some(&"cached") => true,
                    Some(_) => return Err(malformed()),
                };
                Ok(Response::Status(JobStatus { state, from_cache }))
            }
            Some("result") if tokens.len() == 2 => Ok(Response::Result(
                payload
                    .ok_or_else(|| ServiceError::Protocol("result without payload".into()))?
                    .to_string(),
            )),
            Some("events") if tokens.len() == 2 => Ok(Response::Events(
                events_from_text(
                    payload
                        .ok_or_else(|| ServiceError::Protocol("events without payload".into()))?,
                )
                .map_err(|e| ServiceError::Protocol(e.to_string()))?,
            )),
            Some("cancelled") if tokens.len() == 2 => Ok(Response::Cancelled),
            Some("stats") if tokens.len() == 2 => Ok(Response::Stats(ServiceStats::from_text(
                payload.ok_or_else(|| ServiceError::Protocol("stats without payload".into()))?,
            )?)),
            Some("metrics") if tokens.len() == 2 => Ok(Response::Metrics(
                MetricsSnapshot::from_text(
                    payload
                        .ok_or_else(|| ServiceError::Protocol("metrics without payload".into()))?,
                )
                .map_err(|e| ServiceError::Protocol(e.to_string()))?,
            )),
            Some("trace") if tokens.len() == 2 => Ok(Response::Trace(
                JobTrace::from_text(
                    payload
                        .ok_or_else(|| ServiceError::Protocol("trace without payload".into()))?,
                )
                .map_err(|e| ServiceError::Protocol(e.to_string()))?,
            )),
            Some("bye") if tokens.len() == 2 => Ok(Response::Bye),
            _ => Err(malformed()),
        }
    }

    /// The `ERR` reply for a server-side failure.
    pub fn from_error(error: &ServiceError) -> Response {
        let code = match error {
            ServiceError::Io(_) => "io",
            ServiceError::QueueFull { .. } => "queue-full",
            ServiceError::UnknownJob(_) => "unknown-job",
            ServiceError::NotFinished { .. } => "not-done",
            ServiceError::NotCancellable { .. } => "not-cancellable",
            ServiceError::JobFailed { .. } => "job-failed",
            ServiceError::JobCancelled(_) => "job-cancelled",
            ServiceError::ShuttingDown => "shutting-down",
            ServiceError::TimedOut => "timed-out",
            // A lost connection is never reported *over* the connection; the
            // arm exists only to keep this match exhaustive.
            ServiceError::ConnectionLost => "io",
            ServiceError::BadSpec(_) => "bad-spec",
            ServiceError::BadOutcome(_) => "bad-outcome",
            ServiceError::Protocol(_) => "bad-request",
            ServiceError::Remote { code, .. } => code.as_str(),
        };
        Response::Error {
            code: code.to_string(),
            message: error.to_string(),
        }
    }

    /// Converts an `ERR` reply into the error a local call would raise.
    pub fn into_result(self) -> Result<Response, ServiceError> {
        match self {
            Response::Error { code, message } => Err(ServiceError::Remote { code, message }),
            other => Ok(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobState;
    use std::io::BufReader;

    fn round_trip_request(request: Request) {
        let wire = request.wire();
        let mut reader = BufReader::new(wire.as_bytes());
        let header = read_line(&mut reader).unwrap().unwrap();
        let payload = if Request::header_needs_payload(&header) {
            Some(read_block(&mut reader).unwrap())
        } else {
            None
        };
        let rebuilt = Request::from_parts(&header, payload.as_deref()).unwrap();
        assert_eq!(rebuilt, request, "\n{wire}");
    }

    fn round_trip_response(response: Response) {
        let wire = response.wire();
        let mut reader = BufReader::new(wire.as_bytes());
        let header = read_line(&mut reader).unwrap().unwrap();
        let payload = if Response::header_needs_payload(&header) {
            Some(read_block(&mut reader).unwrap())
        } else {
            None
        };
        let rebuilt = Response::from_parts(&header, payload.as_deref()).unwrap();
        assert_eq!(rebuilt, response, "\n{wire}");
    }

    #[test]
    fn requests_round_trip() {
        let spec = "topology: toroidal-mesh 4x4\nrule: smp\nseed: uniform 1\n";
        round_trip_request(Request::Submit {
            priority: Priority::High,
            spec_text: spec.to_string(),
        });
        round_trip_request(Request::Sweep {
            priority: Priority::Low,
            spec_texts: vec![spec.to_string(), spec.to_string(), spec.to_string()],
        });
        // An empty sweep round-trips to [] (not [""]), so the scheduler
        // reports "empty sweep" instead of a bad-spec parse of "".
        round_trip_request(Request::Sweep {
            priority: Priority::Normal,
            spec_texts: Vec::new(),
        });
        round_trip_request(Request::Status { id: JobId::new(7) });
        round_trip_request(Request::Result {
            id: JobId::new(8),
            wait: true,
        });
        round_trip_request(Request::Result {
            id: JobId::new(9),
            wait: false,
        });
        round_trip_request(Request::Watch {
            id: JobId::new(4),
            since: None,
        });
        round_trip_request(Request::Watch {
            id: JobId::new(4),
            since: Some(17),
        });
        round_trip_request(Request::Cancel { id: JobId::new(3) });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Metrics);
        round_trip_request(Request::Trace { id: JobId::new(5) });
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn verb_tokens_match_the_wire_headers() {
        let spec = "topology: toroidal-mesh 4x4\nrule: smp\nseed: uniform 1\n";
        for request in [
            Request::Submit {
                priority: Priority::Normal,
                spec_text: spec.to_string(),
            },
            Request::Sweep {
                priority: Priority::Normal,
                spec_texts: vec![spec.to_string()],
            },
            Request::Status { id: JobId::new(1) },
            Request::Result {
                id: JobId::new(1),
                wait: false,
            },
            Request::Watch {
                id: JobId::new(1),
                since: None,
            },
            Request::Cancel { id: JobId::new(1) },
            Request::Stats,
            Request::Metrics,
            Request::Trace { id: JobId::new(1) },
            Request::Shutdown,
        ] {
            assert!(
                request.wire().starts_with(request.verb()),
                "{:?}",
                request.verb()
            );
        }
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Job(JobId::new(12)));
        round_trip_response(Response::Jobs(vec![
            JobId::new(1),
            JobId::new(2),
            JobId::new(3),
        ]));
        round_trip_response(Response::Status(JobStatus {
            state: JobState::Done,
            from_cache: true,
        }));
        round_trip_response(Response::Status(JobStatus {
            state: JobState::Queued,
            from_cache: false,
        }));
        round_trip_response(Response::Result("rule: smp\nrounds: 3\n".into()));
        round_trip_response(Response::Events(vec![
            RunEvent::Started { nodes: 64 },
            RunEvent::Progress {
                round: 3,
                changed: 5,
                histogram: ctori_engine::ColorHistogram {
                    round: 3,
                    counts: vec![
                        (ctori_coloring::Color::new(1), 59),
                        (ctori_coloring::Color::new(2), 5),
                    ],
                },
            },
            RunEvent::Cancelled,
        ]));
        round_trip_response(Response::Events(Vec::new()));
        round_trip_response(Response::Cancelled);
        round_trip_response(Response::Stats(ServiceStats::default()));
        let mut snapshot = MetricsSnapshot::new();
        snapshot.insert(
            "server.requests.METRICS",
            ctori_engine::telemetry::MetricValue::Counter(3),
        );
        snapshot.insert(
            "exec.queue.depth-hwm",
            ctori_engine::telemetry::MetricValue::Gauge(7),
        );
        let mut hist = ctori_engine::HistogramSnapshot::new();
        hist.buckets[4] = 2;
        hist.count = 2;
        hist.sum = 20;
        hist.max = 12;
        snapshot.insert(
            "exec.queue.wait-us",
            ctori_engine::telemetry::MetricValue::Histogram(Box::new(hist)),
        );
        round_trip_response(Response::Metrics(snapshot));
        round_trip_response(Response::Metrics(MetricsSnapshot::new()));
        let mut trace = ctori_engine::JobTrace::new();
        trace.record(ctori_engine::SpanKind::Submitted, 10);
        trace.record(ctori_engine::SpanKind::Queued, 10);
        trace.record(ctori_engine::SpanKind::Claimed, 40);
        trace.record(ctori_engine::SpanKind::Running, 40);
        trace.record(ctori_engine::SpanKind::Progress { round: 1 }, 55);
        trace.record(ctori_engine::SpanKind::Done, 90);
        round_trip_response(Response::Trace(trace));
        round_trip_response(Response::Bye);
        round_trip_response(Response::Error {
            code: "queue-full".into(),
            message: "submission queue full (8 jobs)".into(),
        });
    }

    #[test]
    fn blocks_dot_stuff_and_unstuff() {
        let payload = "plain\n.starts-with-dot\n..double\n";
        let block = encode_block(payload);
        assert!(block.contains("\n..starts-with-dot\n"), "{block}");
        assert!(block.ends_with("\n.\n"));
        let mut reader = BufReader::new(block.as_bytes());
        assert_eq!(read_block(&mut reader).unwrap(), payload);
        // A lone-dot payload line never terminates the block early.
        let tricky = ".\n";
        let encoded = encode_block(tricky);
        let mut reader = BufReader::new(encoded.as_bytes());
        assert_eq!(read_block(&mut reader).unwrap(), tricky);
    }

    #[test]
    fn malformed_wire_data_is_rejected() {
        assert!(Request::from_parts("LAUNCH 1", None).is_err());
        assert!(Request::from_parts("", None).is_err());
        assert!(Request::from_parts("SUBMIT", None).is_err(), "no payload");
        assert!(Request::from_parts("STATUS", None).is_err(), "no id");
        assert!(Request::from_parts("STATUS x", None).is_err());
        assert!(Request::from_parts("RESULT 1 now", None).is_err());
        assert!(Request::from_parts("WATCH", None).is_err(), "no id");
        assert!(Request::from_parts("WATCH 1 soon", None).is_err());
        assert!(Request::from_parts("METRICS now", None).is_err());
        assert!(Request::from_parts("TRACE", None).is_err(), "no id");
        assert!(Request::from_parts("TRACE x", None).is_err());
        assert!(
            Response::from_parts("OK metrics", None).is_err(),
            "no payload"
        );
        assert!(Response::from_parts("OK metrics", Some("key: rocket 1")).is_err());
        assert!(
            Response::from_parts("OK trace", None).is_err(),
            "no payload"
        );
        assert!(Response::from_parts("OK trace", Some("span: levitated 1")).is_err());
        assert!(Request::from_parts("SUBMIT urgency=high", Some("x")).is_err());
        assert!(
            Response::from_parts("OK events", None).is_err(),
            "no payload"
        );
        assert!(Response::from_parts("OK events", Some("event: levitated")).is_err());
        assert!(Response::from_parts("MAYBE ok", None).is_err());
        assert!(Response::from_parts("OK job", None).is_err());
        assert!(
            Response::from_parts("OK result", None).is_err(),
            "no payload"
        );
        // ERR replies surface as Remote errors through into_result.
        let err = Response::from_parts("ERR queue-full the queue is full", None)
            .unwrap()
            .into_result()
            .unwrap_err();
        match err {
            ServiceError::Remote { code, message } => {
                assert_eq!(code, "queue-full");
                assert_eq!(message, "the queue is full");
            }
            other => panic!("expected Remote, got {other}"),
        }
        // Unexpected EOF inside a block.
        let mut reader = BufReader::new("line-one\n".as_bytes());
        assert!(read_block(&mut reader).is_err());
    }

    #[test]
    fn error_codes_cover_the_service_errors() {
        let cases = [
            (
                Response::from_error(&ServiceError::QueueFull { capacity: 4 }),
                "queue-full",
            ),
            (
                Response::from_error(&ServiceError::UnknownJob(JobId::new(1))),
                "unknown-job",
            ),
            (
                Response::from_error(&ServiceError::ShuttingDown),
                "shutting-down",
            ),
            (
                Response::from_error(&ServiceError::Protocol("x".into())),
                "bad-request",
            ),
        ];
        for (response, expected) in cases {
            match response {
                Response::Error { code, .. } => assert_eq!(code, expected),
                other => panic!("expected Error, got {other:?}"),
            }
        }
    }
}
