//! A small blocking client for the service protocol.
//!
//! [`ServiceClient`] wraps one TCP connection and exposes the protocol
//! verbs as typed methods: specs go in as [`RunSpec`] values (serialized
//! through their canonical text form), outcomes come back as parsed
//! [`RunOutcome`]s.  Server-side failures surface as
//! [`ServiceError::Remote`] carrying the wire error code.
//!
//! ```no_run
//! use ctori_service::{Server, ServiceClient, ServiceConfig};
//! use ctori_engine::{RunSpec, RuleSpec, SeedSpec, TopologySpec};
//! use std::error::Error;
//!
//! fn main() -> Result<(), Box<dyn Error>> {
//!     let server = Server::bind(ServiceConfig::default())?;
//!     let addr = server.local_addr()?;
//!     std::thread::spawn(move || server.serve());
//!
//!     let mut client = ServiceClient::connect(addr)?;
//!     let spec = RunSpec::from_text(
//!         "topology: toroidal-mesh 8x8\nrule: smp\nseed: checkerboard 1 2\n",
//!     )?;
//!     let id = client.submit(&spec)?;
//!     let outcome = client.result(id)?;
//!     println!("{} rounds", outcome.rounds);
//!     client.shutdown()?;
//!     Ok(())
//! }
//! ```

use crate::error::ServiceError;
use crate::job::{JobId, JobStatus, Priority};
use crate::protocol::{self, Request, Response};
use crate::stats::ServiceStats;
use ctori_engine::exec::RunEvent;
use ctori_engine::{JobTrace, MetricsSnapshot, RunOutcome, RunSpec};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking connection to a simulation server.
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// The resolved peer endpoint, kept so [`ServiceClient::reconnect`]
    /// can dial the same server again after the transport drops.
    peer: SocketAddr,
    /// The configured reply-read cap, re-applied across reconnects.
    read_timeout: Option<Duration>,
}

impl ServiceClient {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServiceError> {
        let writer = TcpStream::connect(addr)?;
        Self::from_stream(writer)
    }

    /// Connects with a per-address deadline, so an unreachable or
    /// wedged server cannot block the caller indefinitely.  A deadline
    /// expiry surfaces as [`ServiceError::TimedOut`].
    pub fn connect_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Self, ServiceError> {
        let mut last: Option<std::io::Error> = None;
        for addr in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, timeout) {
                Ok(stream) => return Self::from_stream(stream),
                Err(e) => last = Some(e),
            }
        }
        Err(match last {
            Some(e) if is_timeout(&e) => ServiceError::TimedOut,
            Some(e) => e.into(),
            None => ServiceError::Protocol("address resolved to no endpoints".into()),
        })
    }

    fn from_stream(writer: TcpStream) -> Result<Self, ServiceError> {
        let peer = writer.peer_addr()?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(ServiceClient {
            reader,
            writer,
            peer,
            read_timeout: None,
        })
    }

    /// The server endpoint this client is (or was) connected to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Drops the current connection and dials the same server again,
    /// re-applying the configured read timeout.  Use after
    /// [`ServiceError::ConnectionLost`] or a mid-request
    /// [`ServiceError::TimedOut`] left the old connection unusable; the
    /// server keeps job state across connections, so ids from before the
    /// drop remain valid.
    pub fn reconnect(&mut self) -> Result<(), ServiceError> {
        let writer = TcpStream::connect(self.peer)?;
        writer.set_read_timeout(self.read_timeout)?;
        self.reader = BufReader::new(writer.try_clone()?);
        self.writer = writer;
        Ok(())
    }

    /// Caps how long any single reply read may block (`None` removes the
    /// cap).  With a cap set, a hung server surfaces as
    /// [`ServiceError::TimedOut`] instead of blocking `result(wait)`
    /// forever.
    ///
    /// A timeout that fires **mid-reply** leaves the connection holding a
    /// half-read response; drop the client and reconnect rather than
    /// issuing further requests on it.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ServiceError> {
        self.writer.set_read_timeout(timeout)?;
        self.read_timeout = timeout;
        Ok(())
    }

    /// Submits one spec at [`Priority::Normal`].
    pub fn submit(&mut self, spec: &RunSpec) -> Result<JobId, ServiceError> {
        self.submit_with_priority(spec, Priority::Normal)
    }

    /// Submits one spec at an explicit priority.
    pub fn submit_with_priority(
        &mut self,
        spec: &RunSpec,
        priority: Priority,
    ) -> Result<JobId, ServiceError> {
        match self.roundtrip(&Request::Submit {
            priority,
            spec_text: spec.to_text(),
        })? {
            Response::Job(id) => Ok(id),
            other => Err(unexpected(other)),
        }
    }

    /// Submits a whole sweep atomically; the returned ids are in spec
    /// order.
    pub fn sweep(&mut self, specs: &[RunSpec]) -> Result<Vec<JobId>, ServiceError> {
        self.sweep_with_priority(specs, Priority::Normal)
    }

    /// Submits a sweep at an explicit priority.
    pub fn sweep_with_priority(
        &mut self,
        specs: &[RunSpec],
        priority: Priority,
    ) -> Result<Vec<JobId>, ServiceError> {
        match self.roundtrip(&Request::Sweep {
            priority,
            spec_texts: specs.iter().map(RunSpec::to_text).collect(),
        })? {
            Response::Jobs(ids) => Ok(ids),
            other => Err(unexpected(other)),
        }
    }

    /// The job's lifecycle snapshot.
    pub fn status(&mut self, id: JobId) -> Result<JobStatus, ServiceError> {
        match self.roundtrip(&Request::Status { id })? {
            Response::Status(status) => Ok(status),
            other => Err(unexpected(other)),
        }
    }

    /// Blocks (server-side) until the job terminates and returns its
    /// outcome.
    pub fn result(&mut self, id: JobId) -> Result<RunOutcome, ServiceError> {
        self.fetch_result(id, true)
    }

    /// Non-blocking result probe: `Ok(None)` while the job is still
    /// queued or running.
    pub fn try_result(&mut self, id: JobId) -> Result<Option<RunOutcome>, ServiceError> {
        match self.fetch_result(id, false) {
            Ok(outcome) => Ok(Some(outcome)),
            Err(ServiceError::Remote { code, .. }) if code == "not-done" => Ok(None),
            Err(other) => Err(other),
        }
    }

    /// Polls a job's buffered progress events: everything with
    /// `since = None`, otherwise the progress beyond that round plus the
    /// terminal event once one exists.  Repeat with the last seen round
    /// until a terminal event arrives — that is the `WATCH` streaming
    /// loop (the `RemoteExecutor` handle does it for you).
    pub fn watch(
        &mut self,
        id: JobId,
        since: Option<usize>,
    ) -> Result<Vec<RunEvent>, ServiceError> {
        match self.roundtrip(&Request::Watch { id, since })? {
            Response::Events(events) => Ok(events),
            other => Err(unexpected(other)),
        }
    }

    /// Cancels a queued job.
    pub fn cancel(&mut self, id: JobId) -> Result<(), ServiceError> {
        match self.roundtrip(&Request::Cancel { id })? {
            Response::Cancelled => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// The service counters (including the cache hit/miss statistics).
    pub fn stats(&mut self) -> Result<ServiceStats, ServiceError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected(other)),
        }
    }

    /// The full telemetry exposition: the executor's instruments
    /// (queue-wait and run-time histograms, submission counters) plus
    /// the server's wire-layer ones (per-verb request counts, bytes
    /// in/out, connection lifetimes, framing errors).
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ServiceError> {
        match self.roundtrip(&Request::Metrics)? {
            Response::Metrics(snapshot) => Ok(snapshot),
            other => Err(unexpected(other)),
        }
    }

    /// A job's lifecycle span ring: submitted → queued → claimed →
    /// running → sampled progress → terminal, with monotonic
    /// timestamps.
    pub fn trace(&mut self, id: JobId) -> Result<JobTrace, ServiceError> {
        match self.roundtrip(&Request::Trace { id })? {
            Response::Trace(trace) => Ok(trace),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the server to drain and exit, consuming the connection.
    pub fn shutdown(mut self) -> Result<(), ServiceError> {
        self.request_shutdown()
    }

    /// As [`ServiceClient::shutdown`], but keeps the client value alive
    /// (the connection is spent either way — the server closes it after
    /// `OK bye`).  This is what lets a shared client behind a lock
    /// forward a drain request.
    pub fn request_shutdown(&mut self) -> Result<(), ServiceError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    fn fetch_result(&mut self, id: JobId, wait: bool) -> Result<RunOutcome, ServiceError> {
        match self.roundtrip(&Request::Result { id, wait })? {
            Response::Result(text) => Ok(RunOutcome::from_text(&text)?),
            other => Err(unexpected(other)),
        }
    }

    /// Writes one request and reads one reply; `ERR` replies become
    /// [`ServiceError::Remote`], expired read deadlines
    /// [`ServiceError::TimedOut`].
    fn roundtrip(&mut self, request: &Request) -> Result<Response, ServiceError> {
        self.writer
            .write_all(request.wire().as_bytes())
            .map_err(|e| lift_lost(e.into()))?;
        self.writer.flush().map_err(|e| lift_lost(e.into()))?;
        let header = protocol::read_line(&mut self.reader)
            .map_err(lift_timeout)
            .map_err(lift_lost)?
            .ok_or(ServiceError::ConnectionLost)?;
        let payload = if Response::header_needs_payload(&header) {
            Some(
                protocol::read_block(&mut self.reader)
                    .map_err(lift_timeout)
                    .map_err(lift_lost)?,
            )
        } else {
            None
        };
        Response::from_parts(&header, payload.as_deref())?.into_result()
    }
}

fn unexpected(response: Response) -> ServiceError {
    ServiceError::Protocol(format!("unexpected reply {response:?}"))
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Rewrites an expired read deadline as [`ServiceError::TimedOut`].
fn lift_timeout(e: ServiceError) -> ServiceError {
    match e {
        ServiceError::Io(ref io) if is_timeout(io) => ServiceError::TimedOut,
        other => other,
    }
}

/// Rewrites a dropped-transport I/O failure as
/// [`ServiceError::ConnectionLost`], so callers can tell "the pipe broke,
/// reconnect and retry" apart from unrecoverable I/O (a refused dial stays
/// [`ServiceError::Io`]).
fn lift_lost(e: ServiceError) -> ServiceError {
    match e {
        ServiceError::Io(ref io)
            if matches!(
                io.kind(),
                std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::NotConnected
                    | std::io::ErrorKind::UnexpectedEof
            ) =>
        {
            ServiceError::ConnectionLost
        }
        other => other,
    }
}
