//! The job scheduler: a thin service wrapper over the engine's pool.
//!
//! The persistent worker pool — bounded priority queue, job state
//! machine, queued-only cancellation, panic→`failed` capture, graceful
//! drain, terminal-record retention, per-job progress events — lives in
//! [`ctori_engine::LocalExecutor`] since the execution-API redesign; this
//! module wraps it with everything that is *service* policy:
//!
//! * the content-addressed [`ResultCache`], plugged into the pool's
//!   [`ctori_engine::exec::OutcomeCache`] hook (workers probe it under
//!   the spec's canonical key before executing and memoize fresh
//!   outcomes on the way out);
//! * the wire-protocol [`JobId`]s (the pool's ids, re-tagged) and
//!   [`ServiceError`]s with job context re-attached;
//! * the [`ServiceStats`] snapshot combining pool counters with cache
//!   counters.
//!
//! Each job executes sequentially on its worker: the pool itself is the
//! parallelism, so a sweep of `N` specs scales with the worker count
//! without oversubscribing the machine.

use crate::cache::ResultCache;
use crate::error::ServiceError;
use crate::job::{JobId, JobState, JobStatus, Priority};
use crate::stats::ServiceStats;
use ctori_engine::exec::{ExecError, OutcomeCache, RunEvent};
use ctori_engine::telemetry::monotonic_nanos;
use ctori_engine::{
    JobTrace, LocalExecutor, LocalExecutorConfig, Registry, RunOutcome, RunSpec, SpecKey,
};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Sizing knobs of a [`Scheduler`].
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfig {
    /// Worker-pool size; `0` = automatic
    /// ([`ctori_engine::default_threads`] — the same knob
    /// [`ctori_engine::EngineOptions::threads`] resolves through).
    pub workers: usize,
    /// Bound on the number of *queued* jobs; submissions beyond it are
    /// rejected with [`ServiceError::QueueFull`].
    pub queue_capacity: usize,
    /// Capacity of the content-addressed result cache (`0` disables it).
    pub cache_capacity: usize,
    /// How many **terminal** job records (done/failed/cancelled) to keep
    /// for `STATUS`/`RESULT`/`WATCH` queries.  Beyond the bound the
    /// oldest terminal records are forgotten — their ids then report
    /// [`ServiceError::UnknownJob`] — which is what keeps a long-running
    /// server's memory bounded no matter how many jobs it has served.
    pub retain_jobs: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 0,
            queue_capacity: 1024,
            cache_capacity: 256,
            retain_jobs: 4096,
        }
    }
}

/// The service's [`OutcomeCache`] adapter: the plain single-threaded
/// [`ResultCache`] behind its own mutex (the pool probes and publishes
/// from worker threads).
struct SharedCache(Mutex<ResultCache>);

impl OutcomeCache for SharedCache {
    fn probe(&self, key: &SpecKey) -> Option<Arc<RunOutcome>> {
        self.0.lock().expect("cache poisoned").get(key)
    }

    fn publish(&self, key: SpecKey, outcome: &Arc<RunOutcome>) {
        self.0
            .lock()
            .expect("cache poisoned")
            .insert(key, Arc::clone(outcome));
    }
}

/// The batch-simulation scheduler.  See the [module docs](self).
pub struct Scheduler {
    pool: LocalExecutor,
    cache: Arc<SharedCache>,
    /// Monotonic start instant, for the STATS uptime report.
    started_nanos: u64,
}

impl Scheduler {
    /// Starts the worker pool and returns the scheduler handle.
    pub fn start(config: SchedulerConfig) -> Self {
        let cache = Arc::new(SharedCache(Mutex::new(ResultCache::new(
            config.cache_capacity,
        ))));
        // With the cache disabled, hand the pool no cache at all: the
        // pool then skips canonical-key hashing at submission and the
        // guaranteed-miss probe per job.  The SharedCache value is kept
        // only so STATS reports zeroed counters with capacity 0.
        let pool_cache =
            (config.cache_capacity > 0).then(|| Arc::clone(&cache) as Arc<dyn OutcomeCache>);
        let pool = LocalExecutor::start_with_cache(
            LocalExecutorConfig {
                workers: config.workers,
                queue_capacity: config.queue_capacity,
                retain_jobs: config.retain_jobs,
            },
            pool_cache,
        );
        Scheduler {
            pool,
            cache,
            started_nanos: monotonic_nanos(),
        }
    }

    /// Size of the worker pool.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The engine pool behind the scheduler (the service's in-process
    /// [`ctori_engine::Executor`] backend).
    pub fn pool(&self) -> &LocalExecutor {
        &self.pool
    }

    /// Submits one validated spec; returns its job id.
    ///
    /// Fails with [`ServiceError::QueueFull`] when the queue bound is
    /// reached and [`ServiceError::ShuttingDown`] once a drain has begun.
    pub fn submit(&self, spec: RunSpec, priority: Priority) -> Result<JobId, ServiceError> {
        self.pool
            .enqueue(spec, priority)
            .map(JobId::new)
            .map_err(|e| self.lift(None, e))
    }

    /// Submits a whole sweep atomically: either every spec is queued (in
    /// order, under one priority) or none is.
    pub fn submit_sweep(
        &self,
        specs: Vec<RunSpec>,
        priority: Priority,
    ) -> Result<Vec<JobId>, ServiceError> {
        self.pool
            .enqueue_batch(specs, priority)
            .map(|ids| ids.into_iter().map(JobId::new).collect())
            .map_err(|e| self.lift(None, e))
    }

    /// The current lifecycle snapshot of a job.
    pub fn status(&self, id: JobId) -> Result<JobStatus, ServiceError> {
        self.pool
            .job_status(id.as_u64())
            .map_err(|e| self.lift(Some(id), e))
    }

    /// The outcome of a `done` job.
    ///
    /// Fails with [`ServiceError::NotFinished`] while the job is queued or
    /// running, [`ServiceError::JobFailed`] /
    /// [`ServiceError::JobCancelled`] for the other terminal states.
    pub fn outcome(&self, id: JobId) -> Result<RunOutcome, ServiceError> {
        self.outcome_shared(id).map(|outcome| (*outcome).clone())
    }

    /// As [`Scheduler::outcome`], but hands back the shared handle
    /// without deep-copying the (potentially large) outcome.  The server
    /// serializes straight from it on every `RESULT` reply, including
    /// cache hits.
    pub fn outcome_shared(&self, id: JobId) -> Result<Arc<RunOutcome>, ServiceError> {
        self.pool
            .job_outcome(id.as_u64())
            .map_err(|e| self.lift(Some(id), e))
    }

    /// Blocks until the job reaches a terminal state, then returns as
    /// [`Scheduler::outcome`].  `timeout` of `None` waits indefinitely
    /// (every admitted job terminates: workers drain the queue even during
    /// shutdown).
    pub fn wait(&self, id: JobId, timeout: Option<Duration>) -> Result<RunOutcome, ServiceError> {
        self.wait_shared(id, timeout)
            .map(|outcome| (*outcome).clone())
    }

    /// As [`Scheduler::wait`], but hands back the shared handle without
    /// deep-copying the outcome.
    pub fn wait_shared(
        &self,
        id: JobId,
        timeout: Option<Duration>,
    ) -> Result<Arc<RunOutcome>, ServiceError> {
        self.pool
            .wait_job(id.as_u64(), timeout)
            .map_err(|e| self.lift(Some(id), e))
    }

    /// Cancels a job that is still queued.  Running and terminal jobs are
    /// not cancellable.
    pub fn cancel(&self, id: JobId) -> Result<(), ServiceError> {
        self.pool
            .cancel_job(id.as_u64())
            .map_err(|e| self.lift(Some(id), e))
    }

    /// The job's buffered progress events: everything when `after_round`
    /// is `None`, otherwise the progress events beyond that round — plus
    /// the terminal event whenever one exists.  This is the query behind
    /// the `WATCH <id> [since-round]` protocol verb.
    pub fn events_since(
        &self,
        id: JobId,
        after_round: Option<usize>,
    ) -> Result<Vec<RunEvent>, ServiceError> {
        self.pool
            .events_since(id.as_u64(), after_round)
            .map_err(|e| self.lift(Some(id), e))
    }

    /// A snapshot of the queue, job and cache counters.
    pub fn stats(&self) -> ServiceStats {
        let pool = self.pool.stats();
        ServiceStats {
            workers: pool.workers,
            queued: pool.queued,
            running: pool.running,
            done: pool.done,
            failed: pool.failed,
            cancelled: pool.cancelled,
            jobs_submitted: pool.submitted,
            queue_depth_hwm: pool.queued_hwm,
            uptime_seconds: monotonic_nanos().saturating_sub(self.started_nanos) / 1_000_000_000,
            cache: self.cache.0.lock().expect("cache poisoned").stats(),
        }
    }

    /// The pool's metrics registry: the executor's pre-registered
    /// instruments plus whatever the embedding server adds.  This is the
    /// snapshot behind the `METRICS` protocol verb.
    pub fn telemetry(&self) -> Arc<Registry> {
        self.pool.telemetry()
    }

    /// A copy of the job's lifecycle span ring — the query behind the
    /// `TRACE <id>` protocol verb.
    pub fn trace(&self, id: JobId) -> Result<JobTrace, ServiceError> {
        self.pool
            .job_trace(id.as_u64())
            .map_err(|e| self.lift(Some(id), e))
    }

    /// Drains the scheduler: rejects new submissions, lets every queued
    /// and running job finish, and joins the worker pool.  Idempotent.
    pub fn shutdown(&self) {
        self.pool.shutdown();
    }

    /// Re-attaches service context (the job id, and the job state for
    /// the in-flight/not-cancellable cases) to a pool error.
    fn lift(&self, id: Option<JobId>, error: ExecError) -> ServiceError {
        let id_or_zero = id.unwrap_or_else(|| JobId::new(0));
        // Benign race: the state may have advanced since the error was
        // produced; the reported state is a snapshot either way.
        let state_now = || {
            id.and_then(|id| self.pool.job_status(id.as_u64()).ok())
                .map(|status| status.state)
                .unwrap_or(JobState::Running)
        };
        match error {
            ExecError::QueueFull { capacity } => ServiceError::QueueFull { capacity },
            ExecError::ShuttingDown => ServiceError::ShuttingDown,
            ExecError::UnknownJob => ServiceError::UnknownJob(id_or_zero),
            ExecError::NotFinished => ServiceError::NotFinished {
                id: id_or_zero,
                state: state_now(),
            },
            ExecError::NotCancellable => ServiceError::NotCancellable {
                id: id_or_zero,
                state: state_now(),
            },
            ExecError::Failed { message } => ServiceError::JobFailed {
                id: id_or_zero,
                message,
            },
            ExecError::Cancelled => ServiceError::JobCancelled(id_or_zero),
            ExecError::TimedOut => ServiceError::TimedOut,
            ExecError::Backend(detail) => ServiceError::Protocol(detail),
            _ => ServiceError::Protocol(error.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctori_coloring::Color;
    use ctori_engine::{RuleSpec, RunEvent, Runner, SeedSpec, Termination, TopologySpec};

    fn spec(size: usize, node: usize) -> RunSpec {
        RunSpec::new(
            TopologySpec::toroidal_mesh(size, size),
            RuleSpec::parse("smp").unwrap(),
            SeedSpec::nodes(Color::new(1), Color::new(2), [node]),
        )
    }

    fn small_scheduler(workers: usize) -> Scheduler {
        Scheduler::start(SchedulerConfig {
            workers,
            queue_capacity: 64,
            cache_capacity: 16,
            ..SchedulerConfig::default()
        })
    }

    #[test]
    fn submit_wait_and_status() {
        let scheduler = small_scheduler(2);
        let id = scheduler.submit(spec(4, 0), Priority::Normal).unwrap();
        let outcome = scheduler.wait(id, Some(Duration::from_secs(30))).unwrap();
        assert_eq!(
            outcome.termination,
            Termination::Monochromatic(Color::new(2))
        );
        let status = scheduler.status(id).unwrap();
        assert_eq!(status.state, JobState::Done);
        assert!(!status.from_cache, "first execution is fresh");
        assert_eq!(scheduler.outcome(id).unwrap(), outcome);
        scheduler.shutdown();
    }

    #[test]
    fn duplicate_specs_hit_the_cache() {
        let scheduler = small_scheduler(1);
        let a = scheduler.submit(spec(5, 3), Priority::Normal).unwrap();
        let first = scheduler.wait(a, None).unwrap();
        let b = scheduler.submit(spec(5, 3), Priority::Normal).unwrap();
        let second = scheduler.wait(b, None).unwrap();
        assert_eq!(first, second, "memoized outcome is byte-identical");
        assert!(scheduler.status(b).unwrap().from_cache);
        let stats = scheduler.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
        assert_eq!(stats.done, 2);
        scheduler.shutdown();
    }

    #[test]
    fn sweep_submits_all_and_preserves_ids_in_order() {
        let scheduler = small_scheduler(4);
        let specs: Vec<RunSpec> = (0..6).map(|n| spec(4, n)).collect();
        let ids = scheduler
            .submit_sweep(specs.clone(), Priority::Normal)
            .unwrap();
        assert_eq!(ids.len(), 6);
        for (id, s) in ids.iter().zip(&specs) {
            let outcome = scheduler.wait(*id, None).unwrap();
            assert_eq!(outcome, Runner::with_threads(1).execute(s));
        }
        assert!(scheduler
            .submit_sweep(Vec::new(), Priority::Normal)
            .is_err());
        scheduler.shutdown();
    }

    #[test]
    fn queue_bound_rejects_overflow() {
        let scheduler = Scheduler::start(SchedulerConfig {
            workers: 1,
            queue_capacity: 2,
            cache_capacity: 0,
            ..SchedulerConfig::default()
        });
        // Stuff the queue faster than one worker drains 16x16 runs.
        let mut admitted = 0usize;
        let mut rejected = 0usize;
        for n in 0..64 {
            match scheduler.submit(spec(16, n), Priority::Normal) {
                Ok(_) => admitted += 1,
                Err(ServiceError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 2);
                    rejected += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(admitted >= 2, "at least the first two fit");
        assert!(rejected > 0, "the bound must reject a burst of 64");
        scheduler.shutdown();
    }

    #[test]
    fn cancellation_only_while_queued() {
        let scheduler = Scheduler::start(SchedulerConfig {
            workers: 1,
            queue_capacity: 64,
            cache_capacity: 0,
            ..SchedulerConfig::default()
        });
        // Head job occupies the single worker while we cancel the tail.
        let head = scheduler.submit(spec(24, 0), Priority::Normal).unwrap();
        let tail = scheduler.submit(spec(24, 1), Priority::Normal).unwrap();
        match scheduler.cancel(tail) {
            Ok(()) => {
                assert_eq!(scheduler.status(tail).unwrap().state, JobState::Cancelled);
                assert!(matches!(
                    scheduler.wait(tail, None),
                    Err(ServiceError::JobCancelled(_))
                ));
            }
            Err(ServiceError::NotCancellable { .. }) => {
                // The worker was faster; that is a legal race.
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
        scheduler.wait(head, None).unwrap();
        let done = scheduler.status(head).unwrap();
        assert_eq!(done.state, JobState::Done);
        assert!(matches!(
            scheduler.cancel(head),
            Err(ServiceError::NotCancellable { .. })
        ));
        assert!(matches!(
            scheduler.cancel(JobId::new(999)),
            Err(ServiceError::UnknownJob(_))
        ));
        scheduler.shutdown();
    }

    #[test]
    fn stale_queue_entry_survives_record_eviction() {
        // A cancelled job's heap entry outlives its record when a tight
        // retention window evicts the record before a worker pops the
        // entry.  That pop must be skipped, not panic (a panic would
        // poison the pool lock and kill the whole scheduler).
        let scheduler = Scheduler::start(SchedulerConfig {
            workers: 1,
            queue_capacity: 64,
            cache_capacity: 0,
            retain_jobs: 1,
        });
        // With retain_jobs=1 a record may be evicted before wait() looks
        // at it; that means the job already reached a terminal state, so
        // UnknownJob is as good as an outcome here.
        let wait_terminal = |id: JobId| match scheduler.wait(id, None) {
            Ok(_) | Err(ServiceError::UnknownJob(_)) => {}
            Err(other) => panic!("unexpected error: {other}"),
        };
        // Head occupies the single worker; tail sits at low priority.
        let head = scheduler.submit(spec(32, 0), Priority::Normal).unwrap();
        let tail = scheduler.submit(spec(32, 1), Priority::Low).unwrap();
        match scheduler.cancel(tail) {
            // Normal-priority jobs now terminate ahead of the stale Low
            // entry; with retain_jobs=1 each completion evicts the
            // previous terminal record, including the cancelled tail's.
            Ok(()) => {}
            Err(ServiceError::NotCancellable { .. }) => {
                // The worker was faster; the stale-entry scenario did not
                // arise this run, which is a legal race.
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
        wait_terminal(head);
        let filler: Vec<JobId> = (0..3)
            .map(|n| scheduler.submit(spec(8, n), Priority::Normal).unwrap())
            .collect();
        for id in filler {
            wait_terminal(id);
        }
        // The worker has popped (and skipped) the stale tail entry by the
        // time the queue is empty again; the scheduler must still serve —
        // a panic on the stale entry would have poisoned the pool lock
        // and every call below would die on "pool poisoned".
        let probe = scheduler.submit(spec(8, 7), Priority::Normal).unwrap();
        wait_terminal(probe);
        assert_eq!(scheduler.stats().queued, 0);
        scheduler.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_work_and_rejects_new() {
        let scheduler = small_scheduler(2);
        let ids: Vec<JobId> = (0..8)
            .map(|n| scheduler.submit(spec(8, n), Priority::Normal).unwrap())
            .collect();
        scheduler.shutdown();
        for id in ids {
            assert_eq!(scheduler.status(id).unwrap().state, JobState::Done);
        }
        assert!(matches!(
            scheduler.submit(spec(4, 0), Priority::Normal),
            Err(ServiceError::ShuttingDown)
        ));
        // Idempotent.
        scheduler.shutdown();
    }

    #[test]
    fn terminal_records_are_bounded() {
        let scheduler = Scheduler::start(SchedulerConfig {
            workers: 1,
            queue_capacity: 64,
            cache_capacity: 0,
            retain_jobs: 4,
        });
        let ids: Vec<JobId> = (0..8)
            .map(|n| scheduler.submit(spec(4, n), Priority::Normal).unwrap())
            .collect();
        scheduler.shutdown();
        // The newest terminal records are still queryable; the oldest
        // have been forgotten, so memory stays bounded forever.
        assert_eq!(scheduler.status(ids[7]).unwrap().state, JobState::Done);
        assert!(scheduler.outcome(ids[7]).is_ok());
        assert!(matches!(
            scheduler.status(ids[0]),
            Err(ServiceError::UnknownJob(_))
        ));
        assert!(matches!(
            scheduler.outcome(ids[0]),
            Err(ServiceError::UnknownJob(_))
        ));
    }

    #[test]
    fn wait_times_out_with_not_finished() {
        let scheduler = Scheduler::start(SchedulerConfig {
            workers: 1,
            queue_capacity: 64,
            cache_capacity: 0,
            ..SchedulerConfig::default()
        });
        let _head = scheduler.submit(spec(32, 0), Priority::Normal).unwrap();
        let tail = scheduler.submit(spec(32, 1), Priority::Normal).unwrap();
        match scheduler.wait(tail, Some(Duration::from_millis(1))) {
            Err(ServiceError::NotFinished { id, .. }) => assert_eq!(id, tail),
            Ok(_) => {} // absurdly fast machine; still correct
            Err(other) => panic!("unexpected error: {other}"),
        }
        scheduler.shutdown();
    }

    #[test]
    fn telemetry_and_traces_surface_through_the_scheduler() {
        let scheduler = small_scheduler(2);
        let id = scheduler.submit(spec(6, 1), Priority::Normal).unwrap();
        scheduler.wait(id, None).unwrap();
        let snapshot = scheduler.telemetry().snapshot();
        assert_eq!(snapshot.counter("exec.jobs.submitted"), Some(1));
        assert!(snapshot.histogram("exec.queue.wait-us").unwrap().count >= 1);
        let trace = scheduler.trace(id).unwrap();
        assert!(trace.is_monotone());
        assert!(trace.terminal().is_some());
        assert!(matches!(
            scheduler.trace(JobId::new(999)),
            Err(ServiceError::UnknownJob(_))
        ));
        let stats = scheduler.stats();
        assert_eq!(stats.jobs_submitted, 1);
        assert!(stats.queue_depth_hwm >= 1);
        scheduler.shutdown();
    }

    #[test]
    fn events_carry_job_context_through_the_scheduler() {
        let scheduler = small_scheduler(1);
        let growth = RunSpec::new(
            TopologySpec::toroidal_mesh(8, 8),
            RuleSpec::parse("threshold(2,1)").unwrap(),
            SeedSpec::nodes(Color::new(2), Color::new(1), [0usize]),
        );
        let id = scheduler.submit(growth, Priority::Normal).unwrap();
        scheduler.wait(id, None).unwrap();
        let events = scheduler.events_since(id, None).unwrap();
        assert!(matches!(events.first(), Some(RunEvent::Started { .. })));
        assert!(matches!(events.last(), Some(RunEvent::Finished { .. })));
        let rounds: Vec<usize> = events.iter().filter_map(RunEvent::progress_round).collect();
        assert!(rounds.windows(2).all(|w| w[0] < w[1]), "{rounds:?}");
        assert!(matches!(
            scheduler.events_since(JobId::new(999), None),
            Err(ServiceError::UnknownJob(_))
        ));
        scheduler.shutdown();
    }
}
