//! The job scheduler: bounded priority queue + persistent worker pool.
//!
//! Submissions enter a bounded queue ordered by [`Priority`] (FIFO within
//! one priority) and are drained by a pool of **persistent** worker
//! threads — the same threading idiom as [`ctori_engine::sweep`] (a shared
//! work source drained by long-lived `std::thread` workers), not
//! one-thread-per-request.  Before executing, a worker consults the
//! [`ResultCache`] under the spec's canonical key; a hit completes the job
//! without touching the engine.  Fresh outcomes are memoized on the way
//! out.
//!
//! Lifecycle: jobs move `queued → running → done|failed`, or
//! `queued → cancelled` via [`Scheduler::cancel`].  [`Scheduler::shutdown`]
//! drains gracefully — no new submissions are admitted, every queued job
//! still runs, and the workers are joined before the call returns.
//!
//! Each job executes sequentially on its worker
//! (`Runner::with_threads(1)`): the pool itself is the parallelism, so a
//! sweep of `N` specs scales with the worker count without oversubscribing
//! the machine.

use crate::cache::ResultCache;
use crate::error::ServiceError;
use crate::job::{JobId, JobState, JobStatus, Priority};
use crate::stats::ServiceStats;
use ctori_engine::{default_threads, RunOutcome, RunSpec, Runner, SpecKey};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sizing knobs of a [`Scheduler`].
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfig {
    /// Worker-pool size; `0` = automatic
    /// ([`ctori_engine::default_threads`] — the same knob
    /// [`ctori_engine::EngineOptions::threads`] resolves through).
    pub workers: usize,
    /// Bound on the number of *queued* jobs; submissions beyond it are
    /// rejected with [`ServiceError::QueueFull`].
    pub queue_capacity: usize,
    /// Capacity of the content-addressed result cache (`0` disables it).
    pub cache_capacity: usize,
    /// How many **terminal** job records (done/failed/cancelled) to keep
    /// for `STATUS`/`RESULT` queries.  Beyond the bound the oldest
    /// terminal records are forgotten — their ids then report
    /// [`ServiceError::UnknownJob`] — which is what keeps a long-running
    /// server's memory bounded no matter how many jobs it has served.
    pub retain_jobs: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 0,
            queue_capacity: 1024,
            cache_capacity: 256,
            retain_jobs: 4096,
        }
    }
}

/// A queue reference: max-heap on priority, FIFO (smallest sequence
/// number first) within one priority.
#[derive(PartialEq, Eq)]
struct QueueRef {
    priority: Priority,
    seq: std::cmp::Reverse<u64>,
    id: JobId,
}

impl Ord for QueueRef {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.priority, self.seq).cmp(&(other.priority, other.seq))
    }
}

impl PartialOrd for QueueRef {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct JobRecord {
    spec: Option<RunSpec>, // taken by the worker that runs the job
    key: SpecKey,
    state: JobState,
    from_cache: bool,
    outcome: Option<Arc<RunOutcome>>,
    error: Option<String>,
}

#[derive(Default)]
struct Counters {
    done: u64,
    failed: u64,
    cancelled: u64,
}

struct State {
    queue: BinaryHeap<QueueRef>,
    queued: usize, // queue entries that are still in state Queued
    running: usize,
    jobs: HashMap<JobId, JobRecord>,
    /// Terminal job ids, oldest first — the retention window.
    terminal_order: VecDeque<JobId>,
    cache: ResultCache,
    counters: Counters,
    next_id: u64,
    next_seq: u64,
    shutdown: bool,
}

/// Marks a job terminal and forgets the oldest terminal records beyond
/// the retention bound.
fn record_terminal(state: &mut State, retain: usize, id: JobId) {
    state.terminal_order.push_back(id);
    while state.terminal_order.len() > retain {
        if let Some(old) = state.terminal_order.pop_front() {
            state.jobs.remove(&old);
        }
    }
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when work is queued or shutdown begins (workers wait).
    work_ready: Condvar,
    /// Signalled when any job reaches a terminal state (waiters wait).
    job_done: Condvar,
    queue_capacity: usize,
    retain_jobs: usize,
    workers: usize,
}

/// The batch-simulation scheduler.  See the [module docs](self).
pub struct Scheduler {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Starts the worker pool and returns the scheduler handle.
    pub fn start(config: SchedulerConfig) -> Self {
        let workers = if config.workers == 0 {
            default_threads()
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: BinaryHeap::new(),
                queued: 0,
                running: 0,
                jobs: HashMap::new(),
                terminal_order: VecDeque::new(),
                cache: ResultCache::new(config.cache_capacity),
                counters: Counters::default(),
                next_id: 1,
                next_seq: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
            queue_capacity: config.queue_capacity.max(1),
            retain_jobs: config.retain_jobs.max(1),
            workers,
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Scheduler {
            shared,
            handles: Mutex::new(handles),
        }
    }

    /// Size of the worker pool.
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Submits one validated spec; returns its job id.
    ///
    /// Fails with [`ServiceError::QueueFull`] when the queue bound is
    /// reached and [`ServiceError::ShuttingDown`] once a drain has begun.
    pub fn submit(&self, spec: RunSpec, priority: Priority) -> Result<JobId, ServiceError> {
        let key = spec.canonical_key();
        let mut state = self.lock();
        self.admit(&state, 1)?;
        let id = enqueue(&mut state, spec, key, priority);
        drop(state);
        self.shared.work_ready.notify_one();
        Ok(id)
    }

    /// Submits a whole sweep atomically: either every spec is queued (in
    /// order, under one priority) or none is.
    pub fn submit_sweep(
        &self,
        specs: Vec<RunSpec>,
        priority: Priority,
    ) -> Result<Vec<JobId>, ServiceError> {
        if specs.is_empty() {
            return Err(ServiceError::Protocol("empty sweep".into()));
        }
        let keys: Vec<SpecKey> = specs.iter().map(RunSpec::canonical_key).collect();
        let mut state = self.lock();
        self.admit(&state, specs.len())?;
        let ids = specs
            .into_iter()
            .zip(keys)
            .map(|(spec, key)| enqueue(&mut state, spec, key, priority))
            .collect();
        drop(state);
        self.shared.work_ready.notify_all();
        Ok(ids)
    }

    /// The current lifecycle snapshot of a job.
    pub fn status(&self, id: JobId) -> Result<JobStatus, ServiceError> {
        let state = self.lock();
        let record = state.jobs.get(&id).ok_or(ServiceError::UnknownJob(id))?;
        Ok(JobStatus {
            state: record.state,
            from_cache: record.from_cache,
        })
    }

    /// The outcome of a `done` job.
    ///
    /// Fails with [`ServiceError::NotFinished`] while the job is queued or
    /// running, [`ServiceError::JobFailed`] /
    /// [`ServiceError::JobCancelled`] for the other terminal states.
    pub fn outcome(&self, id: JobId) -> Result<RunOutcome, ServiceError> {
        self.outcome_shared(id).map(|outcome| (*outcome).clone())
    }

    /// As [`Scheduler::outcome`], but hands back the shared handle
    /// without deep-copying the (potentially large) outcome.  The Arc
    /// leaves the lock cheaply; the server serializes straight from it
    /// on every `RESULT` reply, including cache hits.
    pub fn outcome_shared(&self, id: JobId) -> Result<Arc<RunOutcome>, ServiceError> {
        outcome_of(&self.lock(), id)
    }

    /// Blocks until the job reaches a terminal state, then returns as
    /// [`Scheduler::outcome`].  `timeout` of `None` waits indefinitely
    /// (every admitted job terminates: workers drain the queue even during
    /// shutdown).
    pub fn wait(&self, id: JobId, timeout: Option<Duration>) -> Result<RunOutcome, ServiceError> {
        self.wait_shared(id, timeout)
            .map(|outcome| (*outcome).clone())
    }

    /// As [`Scheduler::wait`], but hands back the shared handle without
    /// deep-copying the outcome.
    pub fn wait_shared(
        &self,
        id: JobId,
        timeout: Option<Duration>,
    ) -> Result<Arc<RunOutcome>, ServiceError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut state = self.lock();
        loop {
            match state.jobs.get(&id) {
                None => return Err(ServiceError::UnknownJob(id)),
                Some(record) if record.state.is_terminal() => {
                    return outcome_of(&state, id);
                }
                Some(_) => {}
            }
            state = match deadline {
                None => self
                    .shared
                    .job_done
                    .wait(state)
                    .expect("scheduler poisoned"),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        let record = state.jobs.get(&id).expect("checked above");
                        return Err(ServiceError::NotFinished {
                            id,
                            state: record.state,
                        });
                    }
                    self.shared
                        .job_done
                        .wait_timeout(state, deadline - now)
                        .expect("scheduler poisoned")
                        .0
                }
            };
        }
    }

    /// Cancels a job that is still queued.  Running and terminal jobs are
    /// not cancellable.
    pub fn cancel(&self, id: JobId) -> Result<(), ServiceError> {
        let mut state = self.lock();
        let record = state
            .jobs
            .get_mut(&id)
            .ok_or(ServiceError::UnknownJob(id))?;
        if record.state != JobState::Queued {
            return Err(ServiceError::NotCancellable {
                id,
                state: record.state,
            });
        }
        record.state = JobState::Cancelled;
        record.spec = None;
        state.queued -= 1;
        state.counters.cancelled += 1;
        record_terminal(&mut state, self.shared.retain_jobs, id);
        drop(state);
        self.shared.job_done.notify_all();
        Ok(())
    }

    /// A snapshot of the queue, job and cache counters.
    pub fn stats(&self) -> ServiceStats {
        let state = self.lock();
        ServiceStats {
            workers: self.shared.workers,
            queued: state.queued,
            running: state.running,
            done: state.counters.done,
            failed: state.counters.failed,
            cancelled: state.counters.cancelled,
            cache: state.cache.stats(),
        }
    }

    /// Drains the scheduler: rejects new submissions, lets every queued
    /// and running job finish, and joins the worker pool.  Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = self.lock();
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        let handles = std::mem::take(&mut *self.handles.lock().expect("scheduler poisoned"));
        for handle in handles {
            handle.join().expect("service worker panicked");
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.shared.state.lock().expect("scheduler poisoned")
    }

    /// Checks that `incoming` more jobs may be queued right now.
    fn admit(&self, state: &State, incoming: usize) -> Result<(), ServiceError> {
        if state.shutdown {
            return Err(ServiceError::ShuttingDown);
        }
        if state.queued + incoming > self.shared.queue_capacity {
            return Err(ServiceError::QueueFull {
                capacity: self.shared.queue_capacity,
            });
        }
        Ok(())
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn enqueue(state: &mut State, spec: RunSpec, key: SpecKey, priority: Priority) -> JobId {
    let id = JobId::new(state.next_id);
    state.next_id += 1;
    let seq = state.next_seq;
    state.next_seq += 1;
    state.jobs.insert(
        id,
        JobRecord {
            spec: Some(spec),
            key,
            state: JobState::Queued,
            from_cache: false,
            outcome: None,
            error: None,
        },
    );
    state.queue.push(QueueRef {
        priority,
        seq: std::cmp::Reverse(seq),
        id,
    });
    state.queued += 1;
    id
}

fn outcome_of(state: &State, id: JobId) -> Result<Arc<RunOutcome>, ServiceError> {
    let record = state.jobs.get(&id).ok_or(ServiceError::UnknownJob(id))?;
    match record.state {
        JobState::Done => Ok(record.outcome.clone().expect("done job has an outcome")),
        JobState::Failed => Err(ServiceError::JobFailed {
            id,
            message: record.error.clone().unwrap_or_else(|| "unknown".into()),
        }),
        JobState::Cancelled => Err(ServiceError::JobCancelled(id)),
        state => Err(ServiceError::NotFinished { id, state }),
    }
}

/// The persistent worker body: claim → cache probe → execute → record.
fn worker_loop(shared: &Shared) {
    let mut state = shared.state.lock().expect("scheduler poisoned");
    loop {
        // Claim the next runnable job, skipping stale queue entries: a job
        // cancelled while queued leaves its heap entry behind, and the
        // terminal-retention window may have evicted its record entirely
        // by the time a worker pops the entry.  Neither case may panic —
        // that would poison the state lock and take the whole service
        // down — so a missing or non-queued record is simply skipped.
        let claimed = loop {
            match state.queue.pop() {
                Some(entry) => {
                    let Some(record) = state.jobs.get_mut(&entry.id) else {
                        continue; // cancelled, then evicted from retention
                    };
                    if record.state != JobState::Queued {
                        continue; // cancelled while queued
                    }
                    // Probe the cache under the canonical key: a hit
                    // completes the job without ever leaving the lock.
                    let key = record.key;
                    let cached = state.cache.get(&key);
                    // Re-borrow; the record cannot vanish mid-hold, but
                    // skipping beats poisoning the lock if that ever breaks.
                    let Some(record) = state.jobs.get_mut(&entry.id) else {
                        continue;
                    };
                    if let Some(outcome) = cached {
                        record.state = JobState::Done;
                        record.from_cache = true;
                        record.outcome = Some(outcome);
                        record.spec = None;
                        state.queued -= 1;
                        state.counters.done += 1;
                        record_terminal(&mut state, shared.retain_jobs, entry.id);
                        shared.job_done.notify_all();
                        continue;
                    }
                    record.state = JobState::Running;
                    let spec = record.spec.take().expect("queued job still has its spec");
                    state.queued -= 1;
                    state.running += 1;
                    break Some((entry.id, key, spec));
                }
                None if state.shutdown => break None,
                None => {
                    state = shared.work_ready.wait(state).expect("scheduler poisoned");
                }
            }
        };
        let Some((id, key, spec)) = claimed else {
            return; // drained and shutting down
        };

        // Execute outside the lock; one worker = one sequential run.
        drop(state);
        let result = catch_unwind(AssertUnwindSafe(|| Runner::with_threads(1).execute(&spec)));

        state = shared.state.lock().expect("scheduler poisoned");
        state.running -= 1;
        let record = state.jobs.get_mut(&id).expect("running job exists");
        match result {
            Ok(outcome) => {
                let outcome = Arc::new(outcome);
                record.state = JobState::Done;
                record.outcome = Some(Arc::clone(&outcome));
                state.counters.done += 1;
                state.cache.insert(key, outcome);
            }
            Err(panic) => {
                record.state = JobState::Failed;
                record.error = Some(panic_message(panic.as_ref()));
                state.counters.failed += 1;
            }
        }
        record_terminal(&mut state, shared.retain_jobs, id);
        shared.job_done.notify_all();
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "execution panicked".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctori_coloring::Color;
    use ctori_engine::{RuleSpec, SeedSpec, Termination, TopologySpec};

    fn spec(size: usize, node: usize) -> RunSpec {
        RunSpec::new(
            TopologySpec::toroidal_mesh(size, size),
            RuleSpec::parse("smp").unwrap(),
            SeedSpec::nodes(Color::new(1), Color::new(2), [node]),
        )
    }

    fn small_scheduler(workers: usize) -> Scheduler {
        Scheduler::start(SchedulerConfig {
            workers,
            queue_capacity: 64,
            cache_capacity: 16,
            ..SchedulerConfig::default()
        })
    }

    #[test]
    fn submit_wait_and_status() {
        let scheduler = small_scheduler(2);
        let id = scheduler.submit(spec(4, 0), Priority::Normal).unwrap();
        let outcome = scheduler.wait(id, Some(Duration::from_secs(30))).unwrap();
        assert_eq!(
            outcome.termination,
            Termination::Monochromatic(Color::new(2))
        );
        let status = scheduler.status(id).unwrap();
        assert_eq!(status.state, JobState::Done);
        assert!(!status.from_cache, "first execution is fresh");
        assert_eq!(scheduler.outcome(id).unwrap(), outcome);
        scheduler.shutdown();
    }

    #[test]
    fn duplicate_specs_hit_the_cache() {
        let scheduler = small_scheduler(1);
        let a = scheduler.submit(spec(5, 3), Priority::Normal).unwrap();
        let first = scheduler.wait(a, None).unwrap();
        let b = scheduler.submit(spec(5, 3), Priority::Normal).unwrap();
        let second = scheduler.wait(b, None).unwrap();
        assert_eq!(first, second, "memoized outcome is byte-identical");
        assert!(scheduler.status(b).unwrap().from_cache);
        let stats = scheduler.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
        assert_eq!(stats.done, 2);
        scheduler.shutdown();
    }

    #[test]
    fn sweep_submits_all_and_preserves_ids_in_order() {
        let scheduler = small_scheduler(4);
        let specs: Vec<RunSpec> = (0..6).map(|n| spec(4, n)).collect();
        let ids = scheduler
            .submit_sweep(specs.clone(), Priority::Normal)
            .unwrap();
        assert_eq!(ids.len(), 6);
        for (id, s) in ids.iter().zip(&specs) {
            let outcome = scheduler.wait(*id, None).unwrap();
            assert_eq!(outcome, Runner::with_threads(1).execute(s));
        }
        assert!(scheduler
            .submit_sweep(Vec::new(), Priority::Normal)
            .is_err());
        scheduler.shutdown();
    }

    #[test]
    fn queue_bound_rejects_overflow() {
        let scheduler = Scheduler::start(SchedulerConfig {
            workers: 1,
            queue_capacity: 2,
            cache_capacity: 0,
            ..SchedulerConfig::default()
        });
        // Stuff the queue faster than one worker drains 16x16 runs.
        let mut admitted = 0usize;
        let mut rejected = 0usize;
        for n in 0..64 {
            match scheduler.submit(spec(16, n), Priority::Normal) {
                Ok(_) => admitted += 1,
                Err(ServiceError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 2);
                    rejected += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(admitted >= 2, "at least the first two fit");
        assert!(rejected > 0, "the bound must reject a burst of 64");
        scheduler.shutdown();
    }

    #[test]
    fn cancellation_only_while_queued() {
        let scheduler = Scheduler::start(SchedulerConfig {
            workers: 1,
            queue_capacity: 64,
            cache_capacity: 0,
            ..SchedulerConfig::default()
        });
        // Head job occupies the single worker while we cancel the tail.
        let head = scheduler.submit(spec(24, 0), Priority::Normal).unwrap();
        let tail = scheduler.submit(spec(24, 1), Priority::Normal).unwrap();
        match scheduler.cancel(tail) {
            Ok(()) => {
                assert_eq!(scheduler.status(tail).unwrap().state, JobState::Cancelled);
                assert!(matches!(
                    scheduler.wait(tail, None),
                    Err(ServiceError::JobCancelled(_))
                ));
            }
            Err(ServiceError::NotCancellable { .. }) => {
                // The worker was faster; that is a legal race.
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
        scheduler.wait(head, None).unwrap();
        let done = scheduler.status(head).unwrap();
        assert_eq!(done.state, JobState::Done);
        assert!(matches!(
            scheduler.cancel(head),
            Err(ServiceError::NotCancellable { .. })
        ));
        assert!(matches!(
            scheduler.cancel(JobId::new(999)),
            Err(ServiceError::UnknownJob(_))
        ));
        scheduler.shutdown();
    }

    #[test]
    fn stale_queue_entry_survives_record_eviction() {
        // A cancelled job's heap entry outlives its record when a tight
        // retention window evicts the record before a worker pops the
        // entry.  That pop must be skipped, not panic (a panic would
        // poison the state lock and kill the whole scheduler).
        let scheduler = Scheduler::start(SchedulerConfig {
            workers: 1,
            queue_capacity: 64,
            cache_capacity: 0,
            retain_jobs: 1,
        });
        // With retain_jobs=1 a record may be evicted before wait() looks
        // at it; that means the job already reached a terminal state, so
        // UnknownJob is as good as an outcome here.
        let wait_terminal = |id: JobId| match scheduler.wait(id, None) {
            Ok(_) | Err(ServiceError::UnknownJob(_)) => {}
            Err(other) => panic!("unexpected error: {other}"),
        };
        // Head occupies the single worker; tail sits at low priority.
        let head = scheduler.submit(spec(32, 0), Priority::Normal).unwrap();
        let tail = scheduler.submit(spec(32, 1), Priority::Low).unwrap();
        match scheduler.cancel(tail) {
            // Normal-priority jobs now terminate ahead of the stale Low
            // entry; with retain_jobs=1 each completion evicts the
            // previous terminal record, including the cancelled tail's.
            Ok(()) => {}
            Err(ServiceError::NotCancellable { .. }) => {
                // The worker was faster; the stale-entry scenario did not
                // arise this run, which is a legal race.
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
        wait_terminal(head);
        let filler: Vec<JobId> = (0..3)
            .map(|n| scheduler.submit(spec(8, n), Priority::Normal).unwrap())
            .collect();
        for id in filler {
            wait_terminal(id);
        }
        // The worker has popped (and skipped) the stale tail entry by the
        // time the queue is empty again; the scheduler must still serve —
        // a panic on the stale entry would have poisoned the state lock
        // and every call below would die on "scheduler poisoned".
        let probe = scheduler.submit(spec(8, 7), Priority::Normal).unwrap();
        wait_terminal(probe);
        assert_eq!(scheduler.stats().queued, 0);
        scheduler.shutdown();
    }

    #[test]
    fn queue_orders_by_priority_then_fifo() {
        let entry = |priority, seq, id| QueueRef {
            priority,
            seq: std::cmp::Reverse(seq),
            id: JobId::new(id),
        };
        let mut heap = BinaryHeap::new();
        heap.push(entry(Priority::Normal, 0, 1));
        heap.push(entry(Priority::Low, 1, 2));
        heap.push(entry(Priority::High, 2, 3));
        heap.push(entry(Priority::High, 3, 4));
        heap.push(entry(Priority::Normal, 4, 5));
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop())
            .map(|e| e.id.as_u64())
            .collect();
        // High first (FIFO within high), then normal (FIFO), then low.
        assert_eq!(order, vec![3, 4, 1, 5, 2]);
    }

    #[test]
    fn shutdown_drains_queued_work_and_rejects_new() {
        let scheduler = small_scheduler(2);
        let ids: Vec<JobId> = (0..8)
            .map(|n| scheduler.submit(spec(8, n), Priority::Normal).unwrap())
            .collect();
        scheduler.shutdown();
        for id in ids {
            assert_eq!(scheduler.status(id).unwrap().state, JobState::Done);
        }
        assert!(matches!(
            scheduler.submit(spec(4, 0), Priority::Normal),
            Err(ServiceError::ShuttingDown)
        ));
        // Idempotent.
        scheduler.shutdown();
    }

    #[test]
    fn terminal_records_are_bounded() {
        let scheduler = Scheduler::start(SchedulerConfig {
            workers: 1,
            queue_capacity: 64,
            cache_capacity: 0,
            retain_jobs: 4,
        });
        let ids: Vec<JobId> = (0..8)
            .map(|n| scheduler.submit(spec(4, n), Priority::Normal).unwrap())
            .collect();
        scheduler.shutdown();
        // The newest terminal records are still queryable; the oldest
        // have been forgotten, so memory stays bounded forever.
        assert_eq!(scheduler.status(ids[7]).unwrap().state, JobState::Done);
        assert!(scheduler.outcome(ids[7]).is_ok());
        assert!(matches!(
            scheduler.status(ids[0]),
            Err(ServiceError::UnknownJob(_))
        ));
        assert!(matches!(
            scheduler.outcome(ids[0]),
            Err(ServiceError::UnknownJob(_))
        ));
    }

    #[test]
    fn wait_times_out_with_not_finished() {
        let scheduler = Scheduler::start(SchedulerConfig {
            workers: 1,
            queue_capacity: 64,
            cache_capacity: 0,
            ..SchedulerConfig::default()
        });
        let _head = scheduler.submit(spec(32, 0), Priority::Normal).unwrap();
        let tail = scheduler.submit(spec(32, 1), Priority::Normal).unwrap();
        match scheduler.wait(tail, Some(Duration::from_millis(1))) {
            Err(ServiceError::NotFinished { id, .. }) => assert_eq!(id, tail),
            Ok(_) => {} // absurdly fast machine; still correct
            Err(other) => panic!("unexpected error: {other}"),
        }
        scheduler.shutdown();
    }
}
