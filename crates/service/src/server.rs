//! The TCP front-end over `std::net`.
//!
//! [`Server::bind`] opens a listener (bind to port `0` for an ephemeral
//! loopback port) and [`Server::serve`] runs the accept loop until a
//! client issues `SHUTDOWN`.  Each connection gets a lightweight **I/O
//! handler** thread that only parses requests and writes replies — all
//! simulation work runs on the scheduler's persistent worker pool, so a
//! thousand idle connections cost no simulation threads.  Handlers poll a
//! shared shutdown flag on a short read timeout, and the listener itself
//! is nonblocking and polls the same flag, which is what lets a drain
//! initiated on one connection unblock every other one and the acceptor.
//!
//! Incoming data is bounded: a single request line is capped at
//! [`MAX_LINE_BYTES`] and a payload block at [`MAX_PAYLOAD_BYTES`], so a
//! client that streams data without ever terminating a line or block
//! cannot grow server memory without limit.  The server sends one
//! best-effort `ERR bad-request` reply (briefly draining the offending
//! input so the reply usually survives the close instead of being
//! destroyed by an abortive reset) and closes the connection.  A sweep
//! whose combined spec text would exceed the payload bound can always be
//! split into several `SWEEP`/`SUBMIT` requests — the scheduler's queue
//! bound, not the framing bound, is the admission limit.
//!
//! Shutdown sequence: the handler that reads `SHUTDOWN` replies `OK bye`
//! and raises the flag; the accept loop observes it within one poll
//! interval and exits, the remaining handlers finish their in-flight
//! request and close, and finally the scheduler drains (every admitted
//! job still executes) before [`Server::serve`] returns the final
//! counters.

use crate::error::ServiceError;
use crate::protocol::{self, BlockLine, Request, Response};
use crate::scheduler::{Scheduler, SchedulerConfig};
use crate::stats::ServiceStats;
use ctori_engine::telemetry::{monotonic_nanos, Counter, Histogram};
use ctori_engine::Registry;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often idle connection handlers check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// How often the idle accept loop polls for connections (and the
/// shutdown flag).  Shorter than [`POLL_INTERVAL`]: this bounds the
/// connection-establishment latency every fresh client pays on an idle
/// server, and a 10 ms wake on one thread is negligible.
const ACCEPT_POLL_INTERVAL: Duration = Duration::from_millis(10);

/// Upper bound on one request line (a header or one payload line).
pub const MAX_LINE_BYTES: usize = 1 << 20; // 1 MiB

/// Upper bound on one request payload block (a spec or sweep text).
pub const MAX_PAYLOAD_BYTES: usize = 8 << 20; // 8 MiB

/// Configuration of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// The listen address.  CI and tests stay on the loopback interface;
    /// `127.0.0.1:0` (the default) picks an ephemeral port.
    pub addr: String,
    /// Scheduler sizing (worker pool, queue bound, cache capacity).
    pub scheduler: SchedulerConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".into(),
            scheduler: SchedulerConfig::default(),
        }
    }
}

/// The wire-layer instruments, pre-registered into the scheduler's
/// registry at bind time so the per-request path never takes the
/// registry's map lock.  Everything lands in the same exposition the
/// `METRICS` verb serves.
struct WireMetrics {
    /// `server.requests.<VERB>`, one counter per protocol verb.
    requests: Vec<(&'static str, Arc<Counter>)>,
    /// `server.bytes.in`: request bytes framed (headers and payloads).
    bytes_in: Arc<Counter>,
    /// `server.bytes.out`: reply bytes written.
    bytes_out: Arc<Counter>,
    /// `server.connections`: connections accepted.
    connections: Arc<Counter>,
    /// `server.connection.lifetime-ms`: accept-to-close durations.
    connection_lifetime_ms: Arc<Histogram>,
    /// `server.framing-errors`: connections dropped on unframeable input.
    framing_errors: Arc<Counter>,
}

/// Every protocol verb, for per-verb counter pre-registration.  Kept in
/// lockstep with [`Request::verb`] (the `metrics_cover_every_verb` test
/// breaks if one side drifts).
const VERBS: [&str; 10] = [
    "SUBMIT", "SWEEP", "STATUS", "RESULT", "WATCH", "CANCEL", "STATS", "METRICS", "TRACE",
    "SHUTDOWN",
];

impl WireMetrics {
    fn register(registry: &Registry) -> WireMetrics {
        WireMetrics {
            requests: VERBS
                .iter()
                .map(|verb| (*verb, registry.counter(&format!("server.requests.{verb}"))))
                .collect(),
            bytes_in: registry.counter("server.bytes.in"),
            bytes_out: registry.counter("server.bytes.out"),
            connections: registry.counter("server.connections"),
            connection_lifetime_ms: registry.histogram("server.connection.lifetime-ms"),
            framing_errors: registry.counter("server.framing-errors"),
        }
    }

    /// The counter for one verb (pre-registered, so this is a ten-entry
    /// scan, not a map lookup).
    fn verb_counter(&self, verb: &str) -> Option<&Counter> {
        self.requests
            .iter()
            .find(|(name, _)| *name == verb)
            .map(|(_, counter)| &**counter)
    }
}

/// A bound, not-yet-serving simulation server.
pub struct Server {
    listener: TcpListener,
    scheduler: Scheduler,
    shutdown: Arc<AtomicBool>,
    metrics: WireMetrics,
}

impl Server {
    /// Binds the listener and starts the scheduler's worker pool.
    pub fn bind(config: ServiceConfig) -> std::io::Result<Server> {
        let scheduler = Scheduler::start(config.scheduler);
        let metrics = WireMetrics::register(&scheduler.telemetry());
        Ok(Server {
            listener: TcpListener::bind(&config.addr)?,
            scheduler,
            shutdown: Arc::new(AtomicBool::new(false)),
            metrics,
        })
    }

    /// The bound address (read the ephemeral port from here).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until a client issues `SHUTDOWN`, then drains
    /// the scheduler and returns the final counters.
    pub fn serve(self) -> std::io::Result<ServiceStats> {
        // A nonblocking listener lets the accept loop poll the shutdown
        // flag directly, so a drain raised on any connection is observed
        // within one poll interval — no dependence on a further client
        // connecting (or on a self-connect succeeding) to unblock accept.
        self.listener.set_nonblocking(true)?;
        std::thread::scope(|scope| {
            while !self.shutdown.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        // Handlers expect a blocking socket with a read
                        // timeout as their poll mechanism.
                        if stream.set_nonblocking(false).is_err() {
                            continue;
                        }
                        let scheduler = &self.scheduler;
                        let shutdown = &self.shutdown;
                        let metrics = &self.metrics;
                        scope.spawn(move || {
                            metrics.connections.inc();
                            let opened = monotonic_nanos();
                            handle_connection(stream, scheduler, shutdown, metrics);
                            metrics
                                .connection_lifetime_ms
                                .record(monotonic_nanos().saturating_sub(opened) / 1_000_000);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    // WouldBlock (no pending connection) or a transient
                    // accept failure: sleep one accept poll and retry.
                    Err(_) => std::thread::sleep(ACCEPT_POLL_INTERVAL),
                }
            }
        });
        self.scheduler.shutdown();
        Ok(self.scheduler.stats())
    }
}

/// What a bounded framed read produced.
enum Framed {
    /// A complete line or payload block.
    Data(String),
    /// EOF, or the shutdown flag was raised while idle.
    Closed,
    /// Unframeable input — a size bound was exceeded, or a line is not
    /// valid UTF-8.  The caller should reply `ERR bad-request` with this
    /// detail and drop the connection.
    Malformed(String),
}

/// Reads one full line, polling the shutdown flag on read timeouts.
/// `buf` persists partial reads across timeouts so no bytes are lost.
/// The line is capped at [`MAX_LINE_BYTES`]: each read is `take`-limited
/// to the remaining allowance, so a client that never sends the `\n`
/// terminator cannot grow the buffer past the bound.  Framing is done on
/// **bytes** and converted to UTF-8 only once a line is complete — the
/// allowance boundary may split a multi-byte codepoint, which must not
/// surface as an I/O error.
fn next_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    shutdown: &AtomicBool,
) -> std::io::Result<Framed> {
    loop {
        let allowance = (MAX_LINE_BYTES + 1).saturating_sub(buf.len()) as u64;
        match reader.by_ref().take(allowance).read_until(b'\n', buf) {
            Ok(_) => {
                if buf.ends_with(b"\n") {
                    while buf.last() == Some(&b'\n') || buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return Ok(match String::from_utf8(std::mem::take(buf)) {
                        Ok(line) => Framed::Data(line),
                        Err(_) => Framed::Malformed("line is not valid utf-8".into()),
                    });
                }
                if buf.len() > MAX_LINE_BYTES {
                    return Ok(Framed::Malformed(format!(
                        "line exceeds the {MAX_LINE_BYTES}-byte bound"
                    )));
                }
                // No newline and under the bound: EOF (clean, or in the
                // middle of a line — the fragment is dropped).
                return Ok(Framed::Closed);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(Framed::Closed);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Reads a payload block with the same polling semantics, capped at
/// [`MAX_PAYLOAD_BYTES`] in total.
fn next_block(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    shutdown: &AtomicBool,
) -> std::io::Result<Framed> {
    let mut payload = String::new();
    loop {
        match next_line(reader, buf, shutdown)? {
            Framed::Closed => return Ok(Framed::Closed),
            malformed @ Framed::Malformed(_) => return Ok(malformed),
            Framed::Data(line) => match protocol::decode_block_line(&line) {
                BlockLine::End => return Ok(Framed::Data(payload)),
                BlockLine::Data(data) => {
                    if payload.len() + data.len() > MAX_PAYLOAD_BYTES {
                        return Ok(Framed::Malformed(format!(
                            "payload block exceeds the {MAX_PAYLOAD_BYTES}-byte bound"
                        )));
                    }
                    payload.push_str(&data);
                    payload.push('\n');
                }
            },
        }
    }
}

/// Replies `ERR bad-request` for unframeable input, then makes a best
/// effort to deliver it: the write side is shut down and the read side
/// briefly drained, so a client that has stopped sending gets the reply
/// and a clean FIN instead of an abortive reset (closing with unread
/// bytes in the receive queue would send RST and destroy the reply in
/// flight).  A client that keeps streaming past the drain window still
/// gets reset — delivery stays best-effort, the caller drops the
/// connection either way.
// Deliberate timing code: the drain window is wall-clock bounded.
#[allow(clippy::disallowed_methods)]
fn reply_bad_request(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, detail: String) {
    let error = ServiceError::Protocol(detail);
    let _ = writer.write_all(Response::from_error(&error).wire().as_bytes());
    let _ = writer.flush();
    let _ = writer.shutdown(std::net::Shutdown::Write);
    let mut scratch = [0u8; 8192];
    let deadline = std::time::Instant::now() + 2 * POLL_INTERVAL;
    while std::time::Instant::now() < deadline {
        match reader.get_mut().read(&mut scratch) {
            Ok(0) => break, // client closed its side: FIN both ways
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => break,
        }
    }
}

/// One connection's request/reply loop.
fn handle_connection(
    stream: TcpStream,
    scheduler: &Scheduler,
    shutdown: &AtomicBool,
    metrics: &WireMetrics,
) {
    // The timeout is only a poll interval for the shutdown flag; requests
    // themselves can sit idle indefinitely.
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut buf = Vec::new();

    loop {
        // Checked before every request, not just on idle timeouts: a
        // connection kept busy by a fast client must still close once a
        // drain begins, or serve() would never get past its handler join
        // and the scheduler would keep admitting work after SHUTDOWN.
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let header = match next_line(&mut reader, &mut buf, shutdown) {
            Ok(Framed::Data(line)) => line,
            Ok(Framed::Malformed(detail)) => {
                metrics.framing_errors.inc();
                return reply_bad_request(&mut reader, &mut writer, detail);
            }
            Ok(Framed::Closed) | Err(_) => return,
        };
        if header.trim().is_empty() {
            continue;
        }
        metrics.bytes_in.add(header.len() as u64 + 1);
        let payload = if Request::header_needs_payload(&header) {
            match next_block(&mut reader, &mut buf, shutdown) {
                Ok(Framed::Data(payload)) => {
                    metrics.bytes_in.add(payload.len() as u64);
                    Some(payload)
                }
                Ok(Framed::Malformed(detail)) => {
                    metrics.framing_errors.inc();
                    return reply_bad_request(&mut reader, &mut writer, detail);
                }
                Ok(Framed::Closed) | Err(_) => return,
            }
        } else {
            None
        };
        let (response, bye) = match Request::from_parts(&header, payload.as_deref()) {
            Ok(request) => {
                if let Some(counter) = metrics.verb_counter(request.verb()) {
                    counter.inc();
                }
                dispatch(request, scheduler, shutdown)
            }
            Err(error) => (Response::from_error(&error), false),
        };
        let reply = response.wire();
        metrics.bytes_out.add(reply.len() as u64);
        if writer.write_all(reply.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
        if bye {
            return;
        }
    }
}

/// Executes one request against the scheduler.  The bool asks the caller
/// to close the connection after replying.
fn dispatch(request: Request, scheduler: &Scheduler, shutdown: &AtomicBool) -> (Response, bool) {
    let response = match request {
        Request::Submit {
            priority,
            spec_text,
        } => parse_spec(&spec_text)
            .and_then(|spec| scheduler.submit(spec, priority))
            .map(Response::Job),
        Request::Sweep {
            priority,
            spec_texts,
        } => spec_texts
            .iter()
            .map(|text| parse_spec(text))
            .collect::<Result<Vec<_>, _>>()
            .and_then(|specs| scheduler.submit_sweep(specs, priority))
            .map(Response::Jobs),
        Request::Status { id } => scheduler.status(id).map(Response::Status),
        Request::Result { id, wait } => if wait {
            scheduler.wait_shared(id, None)
        } else {
            scheduler.outcome_shared(id)
        }
        .map(|outcome| Response::Result(outcome.to_text())),
        Request::Watch { id, since } => scheduler.events_since(id, since).map(Response::Events),
        Request::Cancel { id } => scheduler.cancel(id).map(|()| Response::Cancelled),
        Request::Stats => Ok(Response::Stats(scheduler.stats())),
        Request::Metrics => Ok(Response::Metrics(scheduler.telemetry().snapshot())),
        Request::Trace { id } => scheduler.trace(id).map(Response::Trace),
        Request::Shutdown => {
            shutdown.store(true, Ordering::SeqCst);
            // The nonblocking accept loop observes the flag within one
            // poll interval; no further nudge is needed.
            return (Response::Bye, true);
        }
    };
    match response {
        Ok(response) => (response, false),
        Err(error) => (Response::from_error(&error), false),
    }
}

/// Parses and validates a spec payload (validation happens inside
/// `RunSpec::from_text`, so an admitted job can never panic the engine on
/// shape errors).
fn parse_spec(text: &str) -> Result<ctori_engine::RunSpec, ServiceError> {
    Ok(ctori_engine::RunSpec::from_text(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, Priority};

    #[test]
    fn metrics_cover_every_verb() {
        let registry = Registry::new();
        let metrics = WireMetrics::register(&registry);
        let requests = [
            Request::Submit {
                priority: Priority::Normal,
                spec_text: String::new(),
            },
            Request::Sweep {
                priority: Priority::Normal,
                spec_texts: Vec::new(),
            },
            Request::Status { id: JobId::new(1) },
            Request::Result {
                id: JobId::new(1),
                wait: false,
            },
            Request::Watch {
                id: JobId::new(1),
                since: None,
            },
            Request::Cancel { id: JobId::new(1) },
            Request::Stats,
            Request::Metrics,
            Request::Trace { id: JobId::new(1) },
            Request::Shutdown,
        ];
        assert_eq!(requests.len(), VERBS.len());
        for request in &requests {
            let counter = metrics
                .verb_counter(request.verb())
                .unwrap_or_else(|| panic!("no counter for {}", request.verb()));
            counter.inc();
        }
        let snapshot = registry.snapshot();
        for verb in VERBS {
            assert_eq!(
                snapshot.counter(&format!("server.requests.{verb}")),
                Some(1),
                "{verb}"
            );
        }
    }
}
