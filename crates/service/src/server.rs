//! The TCP front-end over `std::net`.
//!
//! [`Server::bind`] opens a listener (bind to port `0` for an ephemeral
//! loopback port) and [`Server::serve`] blocks in the accept loop until a
//! client issues `SHUTDOWN`.  Each connection gets a lightweight **I/O
//! handler** thread that only parses requests and writes replies — all
//! simulation work runs on the scheduler's persistent worker pool, so a
//! thousand idle connections cost no simulation threads.  Handlers poll a
//! shared shutdown flag on a short read timeout, which is what lets a
//! drain initiated on one connection unblock every other one.
//!
//! Shutdown sequence: the handler that reads `SHUTDOWN` replies `OK bye`,
//! raises the flag and pokes the acceptor with a loopback connection; the
//! accept loop exits, the remaining handlers finish their in-flight
//! request and close, and finally the scheduler drains (every admitted
//! job still executes) before [`Server::serve`] returns the final
//! counters.

use crate::error::ServiceError;
use crate::protocol::{self, BlockLine, Request, Response};
use crate::scheduler::{Scheduler, SchedulerConfig};
use crate::stats::ServiceStats;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often idle connection handlers check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Configuration of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// The listen address.  CI and tests stay on the loopback interface;
    /// `127.0.0.1:0` (the default) picks an ephemeral port.
    pub addr: String,
    /// Scheduler sizing (worker pool, queue bound, cache capacity).
    pub scheduler: SchedulerConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".into(),
            scheduler: SchedulerConfig::default(),
        }
    }
}

/// A bound, not-yet-serving simulation server.
pub struct Server {
    listener: TcpListener,
    scheduler: Scheduler,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener and starts the scheduler's worker pool.
    pub fn bind(config: ServiceConfig) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(&config.addr)?,
            scheduler: Scheduler::start(config.scheduler),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (read the ephemeral port from here).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until a client issues `SHUTDOWN`, then drains
    /// the scheduler and returns the final counters.
    pub fn serve(self) -> std::io::Result<ServiceStats> {
        let local = self.listener.local_addr()?;
        std::thread::scope(|scope| {
            for stream in self.listener.incoming() {
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let scheduler = &self.scheduler;
                let shutdown = &self.shutdown;
                scope.spawn(move || handle_connection(stream, scheduler, shutdown, local));
            }
        });
        self.scheduler.shutdown();
        Ok(self.scheduler.stats())
    }
}

/// Reads one full line, polling the shutdown flag on read timeouts.
/// `buf` persists partial reads across timeouts so no bytes are lost.
/// Returns `None` on EOF or when the flag is raised while idle.
fn next_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut String,
    shutdown: &AtomicBool,
) -> std::io::Result<Option<String>> {
    loop {
        match reader.read_line(buf) {
            Ok(0) => return Ok(None),
            Ok(_) => {
                if buf.ends_with('\n') {
                    while buf.ends_with('\n') || buf.ends_with('\r') {
                        buf.pop();
                    }
                    return Ok(Some(std::mem::take(buf)));
                }
                // EOF in the middle of a line: drop the fragment.
                return Ok(None);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Reads a payload block with the same polling semantics.
fn next_block(
    reader: &mut BufReader<TcpStream>,
    buf: &mut String,
    shutdown: &AtomicBool,
) -> std::io::Result<Option<String>> {
    let mut payload = String::new();
    loop {
        match next_line(reader, buf, shutdown)? {
            None => return Ok(None),
            Some(line) => match protocol::decode_block_line(&line) {
                BlockLine::End => return Ok(Some(payload)),
                BlockLine::Data(data) => {
                    payload.push_str(&data);
                    payload.push('\n');
                }
            },
        }
    }
}

/// One connection's request/reply loop.
fn handle_connection(
    stream: TcpStream,
    scheduler: &Scheduler,
    shutdown: &AtomicBool,
    local: SocketAddr,
) {
    // The timeout is only a poll interval for the shutdown flag; requests
    // themselves can sit idle indefinitely.
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut buf = String::new();

    loop {
        let header = match next_line(&mut reader, &mut buf, shutdown) {
            Ok(Some(line)) => line,
            Ok(None) | Err(_) => return,
        };
        if header.trim().is_empty() {
            continue;
        }
        let payload = if Request::header_needs_payload(&header) {
            match next_block(&mut reader, &mut buf, shutdown) {
                Ok(Some(payload)) => Some(payload),
                Ok(None) | Err(_) => return,
            }
        } else {
            None
        };
        let (response, bye) = match Request::from_parts(&header, payload.as_deref()) {
            Ok(request) => dispatch(request, scheduler, shutdown, local),
            Err(error) => (Response::from_error(&error), false),
        };
        if writer.write_all(response.wire().as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
        if bye {
            return;
        }
    }
}

/// Executes one request against the scheduler.  The bool asks the caller
/// to close the connection after replying.
fn dispatch(
    request: Request,
    scheduler: &Scheduler,
    shutdown: &AtomicBool,
    local: SocketAddr,
) -> (Response, bool) {
    let response = match request {
        Request::Submit {
            priority,
            spec_text,
        } => parse_spec(&spec_text)
            .and_then(|spec| scheduler.submit(spec, priority))
            .map(Response::Job),
        Request::Sweep {
            priority,
            spec_texts,
        } => spec_texts
            .iter()
            .map(|text| parse_spec(text))
            .collect::<Result<Vec<_>, _>>()
            .and_then(|specs| scheduler.submit_sweep(specs, priority))
            .map(Response::Jobs),
        Request::Status { id } => scheduler.status(id).map(Response::Status),
        Request::Result { id, wait } => if wait {
            scheduler.wait(id, None)
        } else {
            scheduler.outcome(id)
        }
        .map(|outcome| Response::Result(outcome.to_text())),
        Request::Cancel { id } => scheduler.cancel(id).map(|()| Response::Cancelled),
        Request::Stats => Ok(Response::Stats(scheduler.stats())),
        Request::Shutdown => {
            shutdown.store(true, Ordering::SeqCst);
            // Poke the acceptor so it observes the flag immediately.
            drop(TcpStream::connect_timeout(&local, POLL_INTERVAL));
            return (Response::Bye, true);
        }
    };
    match response {
        Ok(response) => (response, false),
        Err(error) => (Response::from_error(&error), false),
    }
}

/// Parses and validates a spec payload (validation happens inside
/// `RunSpec::from_text`, so an admitted job can never panic the engine on
/// shape errors).
fn parse_spec(text: &str) -> Result<ctori_engine::RunSpec, ServiceError> {
    Ok(ctori_engine::RunSpec::from_text(text)?)
}
