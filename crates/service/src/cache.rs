//! The content-addressed result cache.
//!
//! Outcomes are memoized under the spec's [`SpecKey`]
//! ([`ctori_engine::RunSpec::canonical_key`]): two identical scenarios —
//! whether from the same client, different clients, or different positions
//! in a sweep — share one cached [`RunOutcome`].  The cache is bounded:
//! when full, the least-recently-used entry is evicted.  Every lookup and
//! eviction is counted, and the counters are what the `STATS` protocol
//! verb reports, so a client can *observe* that its duplicate submission
//! was served from cache.
//!
//! The cache is deliberately a plain single-threaded value; the scheduler
//! serializes access under its own state lock.
//!
//! Keys are FNV-1a digests, which are **not** collision-resistant: a
//! crafted spec pair could share a key, so serving a hit to a different
//! client assumes trusted submitters — the loopback-only deployments the
//! service targets.  See [`SpecKey`] for the full caveat.

use crate::stats::CacheStats;
use ctori_engine::{RunOutcome, SpecKey};
use std::collections::HashMap;
use std::sync::Arc;

struct Entry {
    outcome: Arc<RunOutcome>,
    last_used: u64,
}

/// A bounded least-recently-used map from [`SpecKey`] to [`RunOutcome`].
pub struct ResultCache {
    capacity: usize,
    entries: HashMap<SpecKey, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    insertions: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` outcomes.  A capacity of `0`
    /// disables caching entirely (every lookup is a miss, inserts are
    /// dropped).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            insertions: 0,
        }
    }

    /// Looks up a memoized outcome, counting a hit or a miss and marking
    /// the entry as recently used.  Hands back a shared handle — the
    /// scheduler serves it under its lock without copying the outcome.
    pub fn get(&mut self, key: &SpecKey) -> Option<Arc<RunOutcome>> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(Arc::clone(&entry.outcome))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Memoizes an outcome, evicting the least-recently-used entry when at
    /// capacity.
    pub fn insert(&mut self, key: SpecKey, outcome: Arc<RunOutcome>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            // O(n) scan: the capacity bound is small (hundreds), and the
            // scheduler only reaches here once per *fresh* execution, whose
            // cost dwarfs the scan.
            if let Some(&lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                self.entries.remove(&lru);
                self.evictions += 1;
            }
        }
        self.insertions += 1;
        self.entries.insert(
            key,
            Entry {
                outcome,
                last_used: self.tick,
            },
        );
    }

    /// Number of memoized outcomes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            insertions: self.insertions,
            entries: self.entries.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctori_engine::{RuleSpec, RunSpec, Runner, SeedSpec, TopologySpec};

    fn outcome(n: usize) -> (SpecKey, Arc<RunOutcome>) {
        let spec = RunSpec::new(
            TopologySpec::toroidal_mesh(3, 3),
            RuleSpec::parse("smp").unwrap(),
            SeedSpec::nodes(
                ctori_coloring::Color::new(1),
                ctori_coloring::Color::new(2),
                [n % 9],
            ),
        );
        (
            spec.canonical_key(),
            Arc::new(Runner::with_threads(1).execute(&spec)),
        )
    }

    #[test]
    fn hits_misses_and_lru_eviction() {
        let mut cache = ResultCache::new(2);
        let (k1, o1) = outcome(0);
        let (k2, o2) = outcome(1);
        let (k3, o3) = outcome(2);
        assert!(cache.get(&k1).is_none());
        cache.insert(k1, Arc::clone(&o1));
        assert_eq!(cache.get(&k1).as_deref(), Some(&*o1));
        cache.insert(k2, o2);
        // Touch k1 so k2 is the LRU entry when k3 forces an eviction.
        assert!(cache.get(&k1).is_some());
        cache.insert(k3, o3);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&k1).is_some(), "recently used survives");
        assert!(cache.get(&k2).is_none(), "LRU entry was evicted");
        assert!(cache.get(&k3).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.insertions, 3);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.capacity, 2);
    }

    #[test]
    fn reinsert_updates_without_eviction() {
        let mut cache = ResultCache::new(1);
        let (k1, o1) = outcome(3);
        cache.insert(k1, Arc::clone(&o1));
        cache.insert(k1, o1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.stats().insertions, 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ResultCache::new(0);
        let (k1, o1) = outcome(4);
        cache.insert(k1, o1);
        assert!(cache.is_empty());
        assert!(cache.get(&k1).is_none());
        assert_eq!(cache.stats().misses, 1);
    }
}
