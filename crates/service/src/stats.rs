//! Observable service counters.
//!
//! [`ServiceStats`] is the payload of the `STATS` protocol verb: a
//! `key: value` text block (the same line-oriented convention as
//! [`ctori_engine::RunSpec::to_text`]) that round-trips through
//! [`ServiceStats::to_text`] / [`ServiceStats::from_text`], so the client
//! library rebuilds the exact struct the server rendered.

use crate::error::ServiceError;

/// Hit/miss/eviction counters of the [`crate::cache::ResultCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a memoized outcome.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Outcomes written into the cache.
    pub insertions: u64,
    /// Current number of memoized outcomes.
    pub entries: usize,
    /// The configured capacity bound.
    pub capacity: usize,
}

/// A point-in-time snapshot of the whole service.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Size of the persistent worker pool.
    pub workers: usize,
    /// Jobs currently waiting in the submission queue.
    pub queued: usize,
    /// Jobs currently executing on a worker.
    pub running: usize,
    /// Jobs that reached `done` (fresh executions and cache hits alike).
    pub done: u64,
    /// Jobs that reached `failed`.
    pub failed: u64,
    /// Jobs cancelled while queued.
    pub cancelled: u64,
    /// Jobs ever admitted to the queue (monotone, unlike `queued`).
    pub jobs_submitted: u64,
    /// The deepest the submission queue has ever been.
    pub queue_depth_hwm: usize,
    /// Whole seconds since the server started.
    pub uptime_seconds: u64,
    /// Result-cache counters.
    pub cache: CacheStats,
}

impl ServiceStats {
    /// Renders the stats as `key: value` lines.
    pub fn to_text(&self) -> String {
        format!(
            "workers: {}\nqueued: {}\nrunning: {}\ndone: {}\nfailed: {}\ncancelled: {}\n\
             jobs-submitted: {}\nqueue-depth-hwm: {}\nuptime-seconds: {}\n\
             cache-hits: {}\ncache-misses: {}\ncache-evictions: {}\ncache-insertions: {}\n\
             cache-entries: {}\ncache-capacity: {}\n",
            self.workers,
            self.queued,
            self.running,
            self.done,
            self.failed,
            self.cancelled,
            self.jobs_submitted,
            self.queue_depth_hwm,
            self.uptime_seconds,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.insertions,
            self.cache.entries,
            self.cache.capacity,
        )
    }

    /// Parses the text form produced by [`ServiceStats::to_text`].
    pub fn from_text(text: &str) -> Result<Self, ServiceError> {
        let mut stats = ServiceStats::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let (key, value) = line.split_once(':').ok_or_else(|| {
                ServiceError::Protocol(format!("stats line {line:?} is not `key: value`"))
            })?;
            let value = value.trim();
            let parse_u64 = |v: &str| {
                v.parse::<u64>().map_err(|_| {
                    ServiceError::Protocol(format!("stats value {v:?} is not a number"))
                })
            };
            match key.trim() {
                "workers" => stats.workers = parse_u64(value)? as usize,
                "queued" => stats.queued = parse_u64(value)? as usize,
                "running" => stats.running = parse_u64(value)? as usize,
                "done" => stats.done = parse_u64(value)?,
                "failed" => stats.failed = parse_u64(value)?,
                "cancelled" => stats.cancelled = parse_u64(value)?,
                "jobs-submitted" => stats.jobs_submitted = parse_u64(value)?,
                "queue-depth-hwm" => stats.queue_depth_hwm = parse_u64(value)? as usize,
                "uptime-seconds" => stats.uptime_seconds = parse_u64(value)?,
                "cache-hits" => stats.cache.hits = parse_u64(value)?,
                "cache-misses" => stats.cache.misses = parse_u64(value)?,
                "cache-evictions" => stats.cache.evictions = parse_u64(value)?,
                "cache-insertions" => stats.cache.insertions = parse_u64(value)?,
                "cache-entries" => stats.cache.entries = parse_u64(value)? as usize,
                "cache-capacity" => stats.cache.capacity = parse_u64(value)? as usize,
                other => {
                    return Err(ServiceError::Protocol(format!(
                        "unknown stats key {other:?}"
                    )))
                }
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_text_round_trips() {
        let stats = ServiceStats {
            workers: 4,
            queued: 2,
            running: 1,
            done: 10,
            failed: 1,
            cancelled: 3,
            jobs_submitted: 16,
            queue_depth_hwm: 6,
            uptime_seconds: 321,
            cache: CacheStats {
                hits: 7,
                misses: 11,
                evictions: 2,
                insertions: 9,
                entries: 5,
                capacity: 64,
            },
        };
        let text = stats.to_text();
        assert_eq!(ServiceStats::from_text(&text).unwrap(), stats, "\n{text}");
        assert!(ServiceStats::from_text("workers: many\n").is_err());
        assert!(ServiceStats::from_text("nonsense\n").is_err());
        assert!(ServiceStats::from_text("turbo: 1\n").is_err());
    }
}
