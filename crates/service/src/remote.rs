//! The TCP backend of the engine's execution API.
//!
//! [`RemoteExecutor`] implements [`ctori_engine::Executor`] over one
//! [`ServiceClient`] connection, so the *same* caller code that drives a
//! [`ctori_engine::LocalExecutor`] drives a `ctori-serve` process
//! instead — submit returns a [`ctori_engine::JobHandle`] whose
//! `status`/`wait`/`try_outcome`/`cancel` map onto the protocol verbs
//! and whose polled event stream is fed by `WATCH <id> [since-round]`.
//!
//! The connection is shared behind a mutex: the protocol is strictly
//! request/reply, so every handle operation is one serialized round
//! trip.  `wait()` holds the connection for the duration of a
//! server-side `RESULT <id> wait`, which blocks the *other* handles of
//! the same executor — prefer `wait_observed` (event polling) when
//! several handles multiplex one connection; a bounded
//! [`JobHandle::wait_timeout`](ctori_engine::JobHandle::wait_timeout)
//! polls instead of blocking, so it never starves its siblings.
//!
//! ```no_run
//! use ctori_engine::{Executor, SubmitOptions};
//! use ctori_service::RemoteExecutor;
//! use ctori_engine::RunSpec;
//!
//! let remote = RemoteExecutor::connect("127.0.0.1:7171").unwrap();
//! let spec = RunSpec::from_text(
//!     "topology: toroidal-mesh 64x64\nrule: smp\nseed: checkerboard 1 2\n",
//! )
//! .unwrap();
//! let mut handle = remote.submit(&spec, SubmitOptions::default()).unwrap();
//! let outcome = handle
//!     .wait_observed(|event| println!("{}", event.to_text()))
//!     .unwrap();
//! println!("{} rounds", outcome.rounds);
//! ```

use crate::client::ServiceClient;
use crate::error::ServiceError;
use crate::job::JobId;
use crate::stats::ServiceStats;
use ctori_engine::exec::{
    ExecError, Executor, JobControl, JobHandle, JobStatus, RunEvent, SubmitOptions,
};
use ctori_engine::{JobTrace, MetricsSnapshot, RunOutcome, RunSpec};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// How often a bounded remote wait polls the server.
const REMOTE_POLL: Duration = Duration::from_millis(20);

/// A [`ctori_engine::Executor`] backed by a simulation server over TCP.
pub struct RemoteExecutor {
    client: Arc<Mutex<ServiceClient>>,
}

impl RemoteExecutor {
    /// Connects to a server.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> Result<Self, ServiceError> {
        Ok(RemoteExecutor::new(ServiceClient::connect(addr)?))
    }

    /// Connects with a deadline (see [`ServiceClient::connect_timeout`]).
    pub fn connect_timeout(
        addr: impl std::net::ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Self, ServiceError> {
        Ok(RemoteExecutor::new(ServiceClient::connect_timeout(
            addr, timeout,
        )?))
    }

    /// Wraps an already-connected client.
    pub fn new(client: ServiceClient) -> Self {
        RemoteExecutor {
            client: Arc::new(Mutex::new(client)),
        }
    }

    /// The service counters (cache hits, queue depth, …) — the remote
    /// analogue of the local pool's stats snapshot.
    pub fn stats(&self) -> Result<ServiceStats, ServiceError> {
        retry_lost(&self.client, |client| client.stats())
    }

    /// The server's full telemetry exposition — the remote analogue of
    /// [`ctori_engine::LocalExecutor::telemetry`], fetched as one
    /// [`MetricsSnapshot`] rather than live instrument handles.
    pub fn metrics(&self) -> Result<MetricsSnapshot, ServiceError> {
        retry_lost(&self.client, |client| client.metrics())
    }

    /// A job's lifecycle span ring, fetched from the server — the
    /// remote analogue of [`ctori_engine::LocalExecutor::job_trace`].
    pub fn trace(&self, id: JobId) -> Result<JobTrace, ServiceError> {
        retry_lost(&self.client, |client| client.trace(id))
    }

    /// Asks the server to drain and exit (`SHUTDOWN`); the connection is
    /// spent afterwards.  This is deliberately **not** what
    /// [`Executor::drain`] does: a remote server is shared
    /// infrastructure, so killing it must be an explicit, named act —
    /// backend-agnostic caller code that drains its executor must stay
    /// safe to point at a server other clients are using.
    pub fn shutdown_server(&self) -> Result<(), ServiceError> {
        self.lock().request_shutdown()
    }

    fn lock(&self) -> MutexGuard<'_, ServiceClient> {
        self.client.lock().expect("remote client poisoned")
    }
}

impl Executor for RemoteExecutor {
    fn submit(&self, spec: &RunSpec, options: SubmitOptions) -> Result<JobHandle, ExecError> {
        // A retried SUBMIT may land twice when the reply (not the request)
        // was lost; that is safe — jobs are content-addressed by
        // `RunSpec::canonical_key()`, so the duplicate is a cache hit.
        let id = retry_lost(&self.client, |client| {
            client.submit_with_priority(spec, options.priority)
        })
        .map_err(lower)?;
        Ok(remote_handle(&self.client, id))
    }

    fn submit_sweep(
        &self,
        specs: &[RunSpec],
        options: SubmitOptions,
    ) -> Result<Vec<JobHandle>, ExecError> {
        let ids = retry_lost(&self.client, |client| {
            client.sweep_with_priority(specs, options.priority)
        })
        .map_err(lower)?;
        Ok(ids
            .into_iter()
            .map(|id| remote_handle(&self.client, id))
            .collect())
    }

    fn drain(&self) {
        // A client-side detach only.  Every job this executor submitted
        // is already admitted server-side and will run to completion
        // (the server drains its own queue on shutdown), so the local
        // half of the drain contract holds with no action; the remote
        // half belongs to the server's owner via
        // [`RemoteExecutor::shutdown_server`] — portable caller code
        // calling `drain()` must never kill a shared server.
    }
}

fn remote_handle(client: &Arc<Mutex<ServiceClient>>, id: JobId) -> JobHandle {
    JobHandle::new(Box::new(RemoteHandle {
        client: Arc::clone(client),
        id,
        last_round: None,
        stream_closed: false,
    }))
}

/// Runs one client operation under the shared-connection lock, dialing the
/// server again and retrying **exactly once** when the transport dropped
/// ([`ServiceError::ConnectionLost`]) or a read deadline fired mid-request
/// ([`ServiceError::TimedOut`] — the connection may hold a half-read reply,
/// so a fresh dial is the only safe recovery either way).  If the redial
/// itself fails the *original* error is returned, so a dead server still
/// surfaces as `ConnectionLost` rather than a connect failure.
fn retry_lost<T>(
    client: &Arc<Mutex<ServiceClient>>,
    mut op: impl FnMut(&mut ServiceClient) -> Result<T, ServiceError>,
) -> Result<T, ServiceError> {
    let mut guard = client.lock().expect("remote client poisoned");
    match op(&mut guard) {
        Err(first @ (ServiceError::ConnectionLost | ServiceError::TimedOut)) => {
            if guard.reconnect().is_err() {
                return Err(first);
            }
            op(&mut guard)
        }
        other => other,
    }
}

/// Translates a wire-level failure into the backend-agnostic error the
/// execution API speaks.  Remote errors lose the context a local pool
/// has (job states, the queue bound), so the nearest variant is used.
fn lower(error: ServiceError) -> ExecError {
    match error {
        ServiceError::QueueFull { capacity } => ExecError::QueueFull { capacity },
        ServiceError::ShuttingDown => ExecError::ShuttingDown,
        ServiceError::UnknownJob(_) => ExecError::UnknownJob,
        ServiceError::NotFinished { .. } => ExecError::NotFinished,
        ServiceError::NotCancellable { .. } => ExecError::NotCancellable,
        ServiceError::JobFailed { message, .. } => ExecError::Failed { message },
        ServiceError::JobCancelled(_) => ExecError::Cancelled,
        ServiceError::TimedOut => ExecError::TimedOut,
        ServiceError::ConnectionLost => {
            ExecError::BackendLost(ServiceError::ConnectionLost.to_string())
        }
        ServiceError::Remote { code, message } => match code.as_str() {
            "queue-full" => ExecError::QueueFull { capacity: 0 },
            "shutting-down" => ExecError::ShuttingDown,
            "unknown-job" => ExecError::UnknownJob,
            "not-done" => ExecError::NotFinished,
            "not-cancellable" => ExecError::NotCancellable,
            "job-failed" => ExecError::Failed { message },
            "job-cancelled" => ExecError::Cancelled,
            "timed-out" => ExecError::TimedOut,
            _ => ExecError::Backend(format!("[{code}] {message}")),
        },
        other => ExecError::Backend(other.to_string()),
    }
}

/// The remote [`JobControl`]: one protocol round trip per operation.
struct RemoteHandle {
    client: Arc<Mutex<ServiceClient>>,
    id: JobId,
    /// The highest progress round already delivered through
    /// [`JobControl::poll_events`]; the next `WATCH` resumes after it.
    last_round: Option<usize>,
    /// Whether a terminal event was already delivered (later polls
    /// return nothing, mirroring the local cursor semantics).
    stream_closed: bool,
}

impl JobControl for RemoteHandle {
    fn label(&self) -> String {
        format!("remote:{}", self.id)
    }

    fn status(&mut self) -> Result<JobStatus, ExecError> {
        let id = self.id;
        retry_lost(&self.client, |client| client.status(id)).map_err(lower)
    }

    // Deliberate timing code: the bounded wait polls against a deadline.
    #[allow(clippy::disallowed_methods)]
    fn wait(&mut self, timeout: Option<Duration>) -> Result<Arc<RunOutcome>, ExecError> {
        match timeout {
            // Unbounded: let the server block the reply until the job is
            // terminal (one round trip, no polling).
            None => {
                let id = self.id;
                retry_lost(&self.client, |client| client.result(id))
                    .map(Arc::new)
                    .map_err(lower)
            }
            // Bounded: poll with try_result so the shared connection is
            // released between probes and no half-read reply can be left
            // behind by a client-side read deadline.
            Some(timeout) => {
                let deadline = Instant::now() + timeout;
                loop {
                    if let Some(outcome) = self.try_outcome()? {
                        return Ok(outcome);
                    }
                    if Instant::now() >= deadline {
                        return Err(ExecError::NotFinished);
                    }
                    std::thread::sleep(REMOTE_POLL);
                }
            }
        }
    }

    fn try_outcome(&mut self) -> Result<Option<Arc<RunOutcome>>, ExecError> {
        let id = self.id;
        retry_lost(&self.client, |client| client.try_result(id))
            .map(|outcome| outcome.map(Arc::new))
            .map_err(lower)
    }

    fn cancel(&mut self) -> Result<(), ExecError> {
        let id = self.id;
        retry_lost(&self.client, |client| client.cancel(id)).map_err(lower)
    }

    fn poll_events(&mut self) -> Result<Vec<RunEvent>, ExecError> {
        if self.stream_closed {
            return Ok(Vec::new());
        }
        let (id, since) = (self.id, self.last_round);
        let events = retry_lost(&self.client, |client| client.watch(id, since)).map_err(lower)?;
        if let Some(round) = events.iter().filter_map(RunEvent::progress_round).max() {
            self.last_round = Some(round);
        } else if self.last_round.is_none() && events.iter().any(|e| !e.is_terminal()) {
            // A first poll that saw only the started event: later polls
            // must not replay it, so advance past "everything".
            self.last_round = Some(0);
        }
        if events.iter().any(RunEvent::is_terminal) {
            self.stream_closed = true;
        }
        Ok(events)
    }
}
