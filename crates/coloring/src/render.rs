//! ASCII rendering of colourings and time matrices.
//!
//! The paper presents its examples as small grids of labelled cells
//! (Figures 1–4) and as matrices of "time-steps remaining to assume colour
//! k" (Figures 5 and 6).  These renderers produce the same artefacts as
//! text, so the experiment binary and the examples can print
//! paper-comparable figures.

use crate::color::Color;
use crate::coloring::Coloring;

/// Renders a colouring as a grid of single-character colour glyphs.
///
/// Colour 1 renders as `1`, …; the unset sentinel renders as `.`.
pub fn render_coloring(coloring: &Coloring) -> String {
    let mut out = String::with_capacity(coloring.len() * 2 + coloring.rows());
    for row in 0..coloring.rows() {
        for col in 0..coloring.cols() {
            if col > 0 {
                out.push(' ');
            }
            out.push(coloring.at(row, col).glyph());
        }
        out.push('\n');
    }
    out
}

/// Renders a colouring highlighting one colour: cells of `highlight` render
/// as `B` (the paper's black nodes), every other cell as `.`.
///
/// This is the format of Figures 1 and 3 of the paper, which only show
/// where the black vertices are.
pub fn render_highlight(coloring: &Coloring, highlight: Color) -> String {
    let mut out = String::with_capacity(coloring.len() * 2 + coloring.rows());
    for row in 0..coloring.rows() {
        for col in 0..coloring.cols() {
            if col > 0 {
                out.push(' ');
            }
            out.push(if coloring.at(row, col) == highlight {
                'B'
            } else {
                '.'
            });
        }
        out.push('\n');
    }
    out
}

/// Renders a matrix of per-vertex integers (e.g. recolouring times), the
/// format of Figures 5 and 6.  `None` entries (vertices that never
/// recoloured) render as `-`.
pub fn render_time_matrix(rows: usize, cols: usize, times: &[Option<usize>]) -> String {
    assert_eq!(times.len(), rows * cols, "time matrix has wrong length");
    let width = times
        .iter()
        .filter_map(|t| *t)
        .map(|t| t.to_string().len())
        .max()
        .unwrap_or(1);
    let mut out = String::new();
    for row in 0..rows {
        for col in 0..cols {
            if col > 0 {
                out.push(' ');
            }
            match times[row * cols + col] {
                Some(t) => out.push_str(&format!("{t:>width$}")),
                None => out.push_str(&format!("{:>width$}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders a side-by-side comparison of two colourings (e.g. before /
/// after), separated by a gutter.
pub fn render_side_by_side(left: &Coloring, right: &Coloring, gutter: &str) -> String {
    let left_s = render_coloring(left);
    let right_s = render_coloring(right);
    let mut out = String::new();
    let empty_left = " ".repeat(left.cols() * 2 - 1);
    let mut l = left_s.lines();
    let mut r = right_s.lines();
    loop {
        match (l.next(), r.next()) {
            (None, None) => break,
            (a, b) => {
                out.push_str(a.unwrap_or(&empty_left));
                out.push_str(gutter);
                out.push_str(b.unwrap_or(""));
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctori_topology::toroidal_mesh;

    #[test]
    fn render_small_grid() {
        let t = toroidal_mesh(2, 3);
        let mut c = Coloring::uniform(&t, Color::new(1));
        c.set_at(0, 1, Color::new(2));
        let s = render_coloring(&c);
        assert_eq!(s, "1 2 1\n1 1 1\n");
    }

    #[test]
    fn render_highlight_marks_only_one_color() {
        let t = toroidal_mesh(2, 2);
        let mut c = Coloring::uniform(&t, Color::new(1));
        c.set_at(1, 1, Color::new(2));
        let s = render_highlight(&c, Color::new(2));
        assert_eq!(s, ". .\n. B\n");
    }

    #[test]
    fn render_times_with_missing_entries() {
        let times = vec![Some(0), Some(10), None, Some(3)];
        let s = render_time_matrix(2, 2, &times);
        assert_eq!(s, " 0 10\n -  3\n");
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn time_matrix_length_checked() {
        let _ = render_time_matrix(2, 2, &[Some(1)]);
    }

    #[test]
    fn side_by_side_has_gutter() {
        let t = toroidal_mesh(2, 2);
        let a = Coloring::uniform(&t, Color::new(1));
        let b = Coloring::uniform(&t, Color::new(2));
        let s = render_side_by_side(&a, &b, "  |  ");
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "1 1  |  2 2");
    }
}
