//! Colours and palettes.
//!
//! The paper's colour set is `C = {1, …, k}`.  We keep colours 1-based to
//! match the paper's notation (colour `1` is "white" and colour `2` is
//! "black" in the bi-coloured setting of Proposition 1), backed by a `u16`
//! so a colouring of a large torus stays compact.

/// A colour from the finite set `C = {1, …, k}`.
///
/// The value 0 is reserved as "uncoloured" sentinel used only inside
/// builders; a fully-built [`crate::Coloring`] never contains it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Color(pub u16);

impl Color {
    /// The "uncoloured" sentinel used by builders.
    pub const UNSET: Color = Color(0);

    /// Colour 1 — the paper's "white" in the bi-coloured setting.
    pub const WHITE: Color = Color(1);

    /// Colour 2 — the paper's "black" in the bi-coloured setting.
    pub const BLACK: Color = Color(2);

    /// Creates a colour with the given 1-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index == 0`; use [`Color::UNSET`] for the sentinel.
    #[inline]
    pub fn new(index: u16) -> Self {
        assert!(
            index > 0,
            "colour indices are 1-based; 0 is the unset sentinel"
        );
        Color(index)
    }

    /// The raw 1-based index.
    #[inline]
    pub fn index(self) -> u16 {
        self.0
    }

    /// Whether this is the unset sentinel.
    #[inline]
    pub fn is_unset(self) -> bool {
        self.0 == 0
    }

    /// A single-character label for rendering: `1..=9` then `a..=z`, `#`
    /// beyond that, `.` for unset.
    pub fn glyph(self) -> char {
        match self.0 {
            0 => '.',
            1..=9 => (b'0' + self.0 as u8) as char,
            10..=35 => (b'a' + (self.0 - 10) as u8) as char,
            _ => '#',
        }
    }
}

impl std::fmt::Display for Color {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_unset() {
            f.write_str("unset")
        } else {
            write!(f, "c{}", self.0)
        }
    }
}

/// The finite colour set `C = {1, …, k}`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Palette {
    size: u16,
}

impl Palette {
    /// Creates the palette `{1, …, size}`.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` — the paper always has at least one colour.
    pub fn new(size: u16) -> Self {
        assert!(size >= 1, "a palette needs at least one colour");
        Palette { size }
    }

    /// The bi-coloured palette `{white, black}` of the baseline rules.
    pub fn bicolor() -> Self {
        Palette::new(2)
    }

    /// Number of colours `|C|`.
    #[inline]
    pub fn size(&self) -> u16 {
        self.size
    }

    /// Whether the palette contains the colour.
    #[inline]
    pub fn contains(&self, c: Color) -> bool {
        c.0 >= 1 && c.0 <= self.size
    }

    /// Iterates over all colours `1..=size`.
    pub fn colors(&self) -> impl Iterator<Item = Color> + '_ {
        (1..=self.size).map(Color)
    }

    /// Iterates over all colours except `excluded` (the paper's
    /// `C \ {k}`).
    pub fn colors_except(&self, excluded: Color) -> impl Iterator<Item = Color> + '_ {
        self.colors().filter(move |&c| c != excluded)
    }

    /// The first colour of the palette different from every colour in
    /// `used`, if any.
    pub fn first_unused(&self, used: &[Color]) -> Option<Color> {
        self.colors().find(|c| !used.contains(c))
    }
}

impl std::fmt::Display for Palette {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C = {{1, …, {}}}", self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colors_are_one_based() {
        let c = Color::new(3);
        assert_eq!(c.index(), 3);
        assert!(!c.is_unset());
        assert!(Color::UNSET.is_unset());
        assert_eq!(Color::WHITE, Color::new(1));
        assert_eq!(Color::BLACK, Color::new(2));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_color_panics() {
        let _ = Color::new(0);
    }

    #[test]
    fn glyphs() {
        assert_eq!(Color::UNSET.glyph(), '.');
        assert_eq!(Color::new(1).glyph(), '1');
        assert_eq!(Color::new(9).glyph(), '9');
        assert_eq!(Color::new(10).glyph(), 'a');
        assert_eq!(Color::new(35).glyph(), 'z');
        assert_eq!(Color::new(36).glyph(), '#');
    }

    #[test]
    fn palette_membership_and_iteration() {
        let p = Palette::new(4);
        assert_eq!(p.size(), 4);
        assert!(p.contains(Color::new(1)));
        assert!(p.contains(Color::new(4)));
        assert!(!p.contains(Color::new(5)));
        assert!(!p.contains(Color::UNSET));
        let all: Vec<u16> = p.colors().map(Color::index).collect();
        assert_eq!(all, vec![1, 2, 3, 4]);
        let rest: Vec<u16> = p.colors_except(Color::new(2)).map(Color::index).collect();
        assert_eq!(rest, vec![1, 3, 4]);
    }

    #[test]
    fn first_unused_color() {
        let p = Palette::new(3);
        assert_eq!(p.first_unused(&[]), Some(Color::new(1)));
        assert_eq!(
            p.first_unused(&[Color::new(1), Color::new(2)]),
            Some(Color::new(3))
        );
        assert_eq!(
            p.first_unused(&[Color::new(1), Color::new(2), Color::new(3)]),
            None
        );
    }

    #[test]
    #[should_panic(expected = "at least one colour")]
    fn empty_palette_panics() {
        let _ = Palette::new(0);
    }

    #[test]
    fn display() {
        assert_eq!(Color::new(5).to_string(), "c5");
        assert_eq!(Color::UNSET.to_string(), "unset");
        assert_eq!(Palette::new(3).to_string(), "C = {1, …, 3}");
    }
}
