//! The colouring `r : V → C` of a torus.

use crate::color::{Color, Palette};
use ctori_topology::{Coord, NodeId, Torus};

/// A colouring of an `m × n` grid, stored row-major.
///
/// This is the state the simulation engine evolves.  It is deliberately a
/// plain flat vector: the SMP protocol's hot loop reads four neighbours and
/// writes one cell per vertex per round, and everything else (blocks,
/// dynamos, hypotheses) is derived from it.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Coloring {
    rows: usize,
    cols: usize,
    cells: Vec<Color>,
}

impl Coloring {
    /// Creates a colouring with every vertex set to `color`.
    pub fn uniform(torus: &Torus, color: Color) -> Self {
        Coloring {
            rows: torus.rows(),
            cols: torus.cols(),
            cells: vec![color; torus.rows() * torus.cols()],
        }
    }

    /// Creates a colouring of an `m × n` grid with every vertex set to
    /// `color`, without needing a torus value.
    pub fn uniform_dims(rows: usize, cols: usize, color: Color) -> Self {
        Coloring {
            rows,
            cols,
            cells: vec![color; rows * cols],
        }
    }

    /// Creates a colouring from an explicit row-major cell vector.
    ///
    /// # Panics
    ///
    /// Panics if `cells.len() != rows * cols`.
    pub fn from_cells(rows: usize, cols: usize, cells: Vec<Color>) -> Self {
        assert_eq!(
            cells.len(),
            rows * cols,
            "cell vector has wrong length for a {rows}x{cols} grid"
        );
        Coloring { rows, cols, cells }
    }

    /// Creates a colouring from a nested row description.
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[Vec<Color>]) -> Self {
        let m = rows.len();
        let n = rows.first().map(Vec::len).unwrap_or(0);
        assert!(rows.iter().all(|r| r.len() == n), "ragged row lengths");
        Coloring {
            rows: m,
            cols: n,
            cells: rows.iter().flatten().copied().collect(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid has no cells (never true for the paper's tori).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The colour of a vertex by dense identifier.
    #[inline]
    pub fn get(&self, v: NodeId) -> Color {
        self.cells[v.index()]
    }

    /// Sets the colour of a vertex by dense identifier.
    #[inline]
    pub fn set(&mut self, v: NodeId, color: Color) {
        self.cells[v.index()] = color;
    }

    /// The colour of a vertex by coordinate.
    #[inline]
    pub fn get_coord(&self, torus: &Torus, c: Coord) -> Color {
        self.get(torus.id(c))
    }

    /// Sets the colour of a vertex by coordinate.
    #[inline]
    pub fn set_coord(&mut self, torus: &Torus, c: Coord, color: Color) {
        self.set(torus.id(c), color);
    }

    /// The colour at `(row, col)` without needing a torus value.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> Color {
        self.cells[row * self.cols + col]
    }

    /// Sets the colour at `(row, col)` without needing a torus value.
    #[inline]
    pub fn set_at(&mut self, row: usize, col: usize, color: Color) {
        self.cells[row * self.cols + col] = color;
    }

    /// Read-only access to the flat cell vector.
    #[inline]
    pub fn cells(&self) -> &[Color] {
        &self.cells
    }

    /// Mutable access to the flat cell vector (used by the engine's
    /// double-buffered update).
    #[inline]
    pub fn cells_mut(&mut self) -> &mut [Color] {
        &mut self.cells
    }

    /// Number of vertices with the given colour (the paper's `|V^k|`).
    pub fn count(&self, color: Color) -> usize {
        self.cells.iter().filter(|&&c| c == color).count()
    }

    /// Per-colour histogram over the given palette.
    pub fn histogram(&self, palette: &Palette) -> Vec<(Color, usize)> {
        palette.colors().map(|c| (c, self.count(c))).collect()
    }

    /// Whether every vertex has the given colour (the paper's
    /// "k-monochromatic configuration").
    pub fn is_monochromatic_in(&self, color: Color) -> bool {
        self.cells.iter().all(|&c| c == color)
    }

    /// If the configuration is monochromatic, returns its colour.
    pub fn monochromatic(&self) -> Option<Color> {
        let first = *self.cells.first()?;
        if self.cells.iter().all(|&c| c == first) {
            Some(first)
        } else {
            None
        }
    }

    /// The set of distinct colours present.
    pub fn distinct_colors(&self) -> Vec<Color> {
        let mut seen: Vec<Color> = Vec::new();
        for &c in &self.cells {
            if !seen.contains(&c) {
                seen.push(c);
            }
        }
        seen.sort_unstable();
        seen
    }

    /// Whether any cell still carries the [`Color::UNSET`] sentinel.
    pub fn has_unset_cells(&self) -> bool {
        self.cells.iter().any(|c| c.is_unset())
    }

    /// Applies a colour permutation / relabelling to every cell.
    ///
    /// Used by the φ transformation of Proposition 1 (collapsing all non-k
    /// colours to "white") and by the colour-permutation-invariance
    /// property tests.
    pub fn map_colors(&self, f: impl Fn(Color) -> Color) -> Coloring {
        Coloring {
            rows: self.rows,
            cols: self.cols,
            cells: self.cells.iter().map(|&c| f(c)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctori_topology::toroidal_mesh;

    #[test]
    fn uniform_and_counts() {
        let t = toroidal_mesh(3, 4);
        let c = Coloring::uniform(&t, Color::new(2));
        assert_eq!(c.rows(), 3);
        assert_eq!(c.cols(), 4);
        assert_eq!(c.len(), 12);
        assert!(!c.is_empty());
        assert_eq!(c.count(Color::new(2)), 12);
        assert_eq!(c.count(Color::new(1)), 0);
        assert!(c.is_monochromatic_in(Color::new(2)));
        assert_eq!(c.monochromatic(), Some(Color::new(2)));
    }

    #[test]
    fn set_get_roundtrip() {
        let t = toroidal_mesh(3, 3);
        let mut c = Coloring::uniform(&t, Color::new(1));
        c.set_coord(&t, Coord::new(1, 2), Color::new(3));
        assert_eq!(c.get_coord(&t, Coord::new(1, 2)), Color::new(3));
        assert_eq!(c.at(1, 2), Color::new(3));
        c.set_at(2, 0, Color::new(2));
        assert_eq!(c.get(t.id(Coord::new(2, 0))), Color::new(2));
        assert_eq!(c.monochromatic(), None);
        assert_eq!(
            c.distinct_colors(),
            vec![Color::new(1), Color::new(2), Color::new(3)]
        );
    }

    #[test]
    fn histogram_matches_counts() {
        let t = toroidal_mesh(2, 2);
        let mut c = Coloring::uniform(&t, Color::new(1));
        c.set_at(0, 0, Color::new(2));
        let p = Palette::new(3);
        let h = c.histogram(&p);
        assert_eq!(
            h,
            vec![(Color::new(1), 3), (Color::new(2), 1), (Color::new(3), 0)]
        );
    }

    #[test]
    fn from_rows_and_cells() {
        let rows = vec![
            vec![Color::new(1), Color::new(2)],
            vec![Color::new(3), Color::new(4)],
        ];
        let c = Coloring::from_rows(&rows);
        assert_eq!(c.at(0, 1), Color::new(2));
        assert_eq!(c.at(1, 0), Color::new(3));
        let c2 = Coloring::from_cells(2, 2, c.cells().to_vec());
        assert_eq!(c, c2);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn from_cells_checks_length() {
        let _ = Coloring::from_cells(2, 2, vec![Color::new(1); 3]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_checks_raggedness() {
        let _ = Coloring::from_rows(&[vec![Color::new(1)], vec![Color::new(1), Color::new(2)]]);
    }

    #[test]
    fn map_colors_applies_pointwise() {
        let t = toroidal_mesh(2, 3);
        let mut c = Coloring::uniform(&t, Color::new(1));
        c.set_at(0, 0, Color::new(3));
        let swapped = c.map_colors(|col| {
            if col == Color::new(3) {
                Color::new(1)
            } else {
                Color::new(3)
            }
        });
        assert_eq!(swapped.at(0, 0), Color::new(1));
        assert_eq!(swapped.at(1, 2), Color::new(3));
        assert_eq!(swapped.count(Color::new(3)), 5);
    }

    #[test]
    fn unset_detection() {
        let mut c = Coloring::uniform_dims(2, 2, Color::UNSET);
        assert!(c.has_unset_cells());
        for i in 0..2 {
            for j in 0..2 {
                c.set_at(i, j, Color::new(1));
            }
        }
        assert!(!c.has_unset_cells());
    }
}
