//! Ergonomic construction of initial configurations.
//!
//! The paper's constructions place a `k`-coloured row and column (Theorem
//! 2), a row plus a single extra vertex (Theorems 4 and 6), or hand-crafted
//! counterexamples (Figures 3 and 4).  [`ColoringBuilder`] provides those
//! placement operations on top of a background colour or an unset grid.

use crate::color::Color;
use crate::coloring::Coloring;
use ctori_topology::{Coord, NodeId, Torus};

/// A builder for initial colourings.
#[derive(Clone, Debug)]
pub struct ColoringBuilder {
    coloring: Coloring,
}

impl ColoringBuilder {
    /// Starts from a grid where every cell is [`Color::UNSET`].
    pub fn unset(torus: &Torus) -> Self {
        ColoringBuilder {
            coloring: Coloring::uniform(torus, Color::UNSET),
        }
    }

    /// Starts from a grid filled with a uniform background colour.
    pub fn filled(torus: &Torus, background: Color) -> Self {
        ColoringBuilder {
            coloring: Coloring::uniform(torus, background),
        }
    }

    /// Sets one cell by coordinate.
    pub fn cell(mut self, row: usize, col: usize, color: Color) -> Self {
        self.coloring.set_at(row, col, color);
        self
    }

    /// Sets one cell by node id.
    pub fn node(mut self, v: NodeId, color: Color) -> Self {
        self.coloring.set(v, color);
        self
    }

    /// Colours an entire row.
    pub fn row(mut self, row: usize, color: Color) -> Self {
        for col in 0..self.coloring.cols() {
            self.coloring.set_at(row, col, color);
        }
        self
    }

    /// Colours an entire column.
    pub fn column(mut self, col: usize, color: Color) -> Self {
        for row in 0..self.coloring.rows() {
            self.coloring.set_at(row, col, color);
        }
        self
    }

    /// Colours a row except for the listed columns.
    pub fn row_except(mut self, row: usize, skip: &[usize], color: Color) -> Self {
        for col in 0..self.coloring.cols() {
            if !skip.contains(&col) {
                self.coloring.set_at(row, col, color);
            }
        }
        self
    }

    /// Colours a column except for the listed rows.
    pub fn column_except(mut self, col: usize, skip: &[usize], color: Color) -> Self {
        for row in 0..self.coloring.rows() {
            if !skip.contains(&row) {
                self.coloring.set_at(row, col, color);
            }
        }
        self
    }

    /// Colours an axis-aligned rectangle given by inclusive row/column
    /// ranges (no wrap-around).
    pub fn rect(
        mut self,
        rows: std::ops::RangeInclusive<usize>,
        cols: std::ops::RangeInclusive<usize>,
        color: Color,
    ) -> Self {
        for row in rows {
            for col in cols.clone() {
                self.coloring.set_at(row, col, color);
            }
        }
        self
    }

    /// Colours every listed coordinate.
    pub fn cells(mut self, coords: &[(usize, usize)], color: Color) -> Self {
        for &(row, col) in coords {
            self.coloring.set_at(row, col, color);
        }
        self
    }

    /// Fills every still-unset cell with the given colour.
    pub fn fill_unset(mut self, color: Color) -> Self {
        let (rows, cols) = (self.coloring.rows(), self.coloring.cols());
        for row in 0..rows {
            for col in 0..cols {
                if self.coloring.at(row, col).is_unset() {
                    self.coloring.set_at(row, col, color);
                }
            }
        }
        self
    }

    /// Fills every still-unset cell using a function of its coordinate.
    pub fn fill_unset_with(mut self, mut f: impl FnMut(Coord) -> Color) -> Self {
        let (rows, cols) = (self.coloring.rows(), self.coloring.cols());
        for row in 0..rows {
            for col in 0..cols {
                if self.coloring.at(row, col).is_unset() {
                    self.coloring.set_at(row, col, f(Coord::new(row, col)));
                }
            }
        }
        self
    }

    /// Finishes the builder.
    ///
    /// # Panics
    ///
    /// Panics if any cell is still unset — an unset cell would not be a
    /// valid colouring `r : V → C`.
    pub fn build(self) -> Coloring {
        assert!(
            !self.coloring.has_unset_cells(),
            "colouring still has unset cells; call fill_unset(...) first"
        );
        self.coloring
    }

    /// Finishes the builder without checking for unset cells (used by
    /// constructions that post-process the grid).
    pub fn build_partial(self) -> Coloring {
        self.coloring
    }

    /// Read-only view of the colouring built so far.
    pub fn peek(&self) -> &Coloring {
        &self.coloring
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctori_topology::toroidal_mesh;

    #[test]
    fn rows_columns_and_cells() {
        let t = toroidal_mesh(4, 5);
        let c = ColoringBuilder::filled(&t, Color::new(1))
            .row(0, Color::new(2))
            .column(0, Color::new(2))
            .cell(2, 2, Color::new(3))
            .build();
        assert_eq!(c.at(0, 3), Color::new(2));
        assert_eq!(c.at(3, 0), Color::new(2));
        assert_eq!(c.at(2, 2), Color::new(3));
        assert_eq!(c.at(3, 4), Color::new(1));
        // row 0 (5 cells) + column 0 (4 cells) overlap in 1 cell
        assert_eq!(c.count(Color::new(2)), 5 + 4 - 1);
    }

    #[test]
    fn row_except_skips_columns() {
        let t = toroidal_mesh(3, 5);
        let c = ColoringBuilder::filled(&t, Color::new(1))
            .row_except(1, &[4], Color::new(2))
            .build();
        assert_eq!(c.at(1, 3), Color::new(2));
        assert_eq!(c.at(1, 4), Color::new(1));
        assert_eq!(c.count(Color::new(2)), 4);
    }

    #[test]
    fn column_except_skips_rows() {
        let t = toroidal_mesh(5, 3);
        let c = ColoringBuilder::filled(&t, Color::new(1))
            .column_except(2, &[0, 4], Color::new(3))
            .build();
        assert_eq!(c.count(Color::new(3)), 3);
        assert_eq!(c.at(0, 2), Color::new(1));
        assert_eq!(c.at(4, 2), Color::new(1));
    }

    #[test]
    fn rect_and_cells() {
        let t = toroidal_mesh(4, 4);
        let c = ColoringBuilder::filled(&t, Color::new(1))
            .rect(1..=2, 1..=2, Color::new(2))
            .cells(&[(0, 0), (3, 3)], Color::new(3))
            .build();
        assert_eq!(c.count(Color::new(2)), 4);
        assert_eq!(c.count(Color::new(3)), 2);
    }

    #[test]
    fn fill_unset_with_function() {
        let t = toroidal_mesh(3, 3);
        let c = ColoringBuilder::unset(&t)
            .cell(0, 0, Color::new(9))
            .fill_unset_with(|c| Color::new(1 + ((c.row + c.col) % 2) as u16))
            .build();
        assert_eq!(c.at(0, 0), Color::new(9));
        assert_eq!(c.at(0, 1), Color::new(2));
        assert_eq!(c.at(1, 1), Color::new(1));
        assert!(!c.has_unset_cells());
    }

    #[test]
    #[should_panic(expected = "unset cells")]
    fn build_rejects_unset_cells() {
        let t = toroidal_mesh(2, 2);
        let _ = ColoringBuilder::unset(&t).cell(0, 0, Color::new(1)).build();
    }

    #[test]
    fn build_partial_allows_unset() {
        let t = toroidal_mesh(2, 2);
        let c = ColoringBuilder::unset(&t)
            .cell(0, 0, Color::new(1))
            .build_partial();
        assert!(c.has_unset_cells());
    }

    #[test]
    fn node_setter_and_peek() {
        let t = toroidal_mesh(2, 2);
        let b =
            ColoringBuilder::filled(&t, Color::new(1)).node(t.id(Coord::new(1, 1)), Color::new(2));
        assert_eq!(b.peek().at(1, 1), Color::new(2));
        let c = b.build();
        assert_eq!(c.count(Color::new(2)), 1);
    }
}
