//! Random colourings.
//!
//! The experiment harness uses random initial configurations to estimate
//! how likely an arbitrary configuration is to converge, and the property
//! tests use them as fuzz inputs.

use crate::color::{Color, Palette};
use crate::coloring::Coloring;
use ctori_topology::Torus;
use rand::seq::SliceRandom;
use rand::Rng;

/// A uniformly random colouring: every cell gets an independent uniformly
/// random colour from the palette.
pub fn uniform_random<R: Rng + ?Sized>(torus: &Torus, palette: &Palette, rng: &mut R) -> Coloring {
    let colors: Vec<Color> = palette.colors().collect();
    let mut c = Coloring::uniform(torus, Color::UNSET);
    for row in 0..torus.rows() {
        for col in 0..torus.cols() {
            c.set_at(row, col, *colors.choose(rng).expect("non-empty palette"));
        }
    }
    c
}

/// A random colouring with a prescribed number of cells of a distinguished
/// colour `k`, the rest uniform over the remaining colours.
///
/// This is the workload used when estimating how large a random `k`-seed
/// must be before it behaves like a dynamo.
pub fn random_with_seed_count<R: Rng + ?Sized>(
    torus: &Torus,
    palette: &Palette,
    k: Color,
    seed_count: usize,
    rng: &mut R,
) -> Coloring {
    let total = torus.rows() * torus.cols();
    assert!(
        seed_count <= total,
        "seed count exceeds the number of vertices"
    );
    let others: Vec<Color> = palette.colors_except(k).collect();
    assert!(
        !others.is_empty() || seed_count == total,
        "need at least one non-k colour unless the seed covers everything"
    );

    let mut positions: Vec<usize> = (0..total).collect();
    positions.shuffle(rng);

    let mut c = Coloring::uniform(torus, Color::UNSET);
    for (idx, pos) in positions.into_iter().enumerate() {
        let (row, col) = (pos / torus.cols(), pos % torus.cols());
        if idx < seed_count {
            c.set_at(row, col, k);
        } else {
            c.set_at(row, col, *others.choose(rng).expect("non-empty"));
        }
    }
    c
}

/// Shuffles the colours of an existing colouring (preserves the histogram,
/// destroys the spatial structure).  Useful as a "null model" baseline in
/// the experiments.
pub fn shuffled<R: Rng + ?Sized>(coloring: &Coloring, rng: &mut R) -> Coloring {
    let mut cells = coloring.cells().to_vec();
    cells.shuffle(rng);
    Coloring::from_cells(coloring.rows(), coloring.cols(), cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctori_topology::toroidal_mesh;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_random_uses_palette_colors_only() {
        let t = toroidal_mesh(8, 8);
        let p = Palette::new(3);
        let mut rng = StdRng::seed_from_u64(7);
        let c = uniform_random(&t, &p, &mut rng);
        assert!(!c.has_unset_cells());
        for &cell in c.cells() {
            assert!(p.contains(cell));
        }
    }

    #[test]
    fn seeded_random_has_exact_seed_count() {
        let t = toroidal_mesh(6, 6);
        let p = Palette::new(4);
        let mut rng = StdRng::seed_from_u64(42);
        let k = Color::new(4);
        for count in [0usize, 1, 10, 36] {
            let c = random_with_seed_count(&t, &p, k, count, &mut rng);
            assert_eq!(c.count(k), count, "seed count mismatch for {count}");
        }
    }

    #[test]
    fn shuffle_preserves_histogram() {
        let t = toroidal_mesh(5, 5);
        let p = Palette::new(3);
        let mut rng = StdRng::seed_from_u64(3);
        let c = uniform_random(&t, &p, &mut rng);
        let s = shuffled(&c, &mut rng);
        for color in p.colors() {
            assert_eq!(c.count(color), s.count(color));
        }
    }

    #[test]
    fn deterministic_with_fixed_seed() {
        let t = toroidal_mesh(4, 4);
        let p = Palette::new(5);
        let a = uniform_random(&t, &p, &mut StdRng::seed_from_u64(123));
        let b = uniform_random(&t, &p, &mut StdRng::seed_from_u64(123));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "exceeds the number of vertices")]
    fn oversized_seed_panics() {
        let t = toroidal_mesh(2, 2);
        let p = Palette::new(2);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = random_with_seed_count(&t, &p, Color::new(1), 5, &mut rng);
    }
}
