//! Deterministic colouring patterns.
//!
//! These are the building blocks of the Theorem 2/4/6 constructions
//! (`ctori-core` combines them with the `k`-coloured seed sets) and of the
//! workload generators used by the benchmark harness.

use crate::color::{Color, Palette};
use crate::coloring::Coloring;
use ctori_topology::Torus;

/// Horizontal stripes: row `i` gets colour `colors[i mod colors.len()]`.
pub fn row_stripes(torus: &Torus, colors: &[Color]) -> Coloring {
    assert!(!colors.is_empty(), "need at least one stripe colour");
    let mut c = Coloring::uniform(torus, Color::UNSET);
    for row in 0..torus.rows() {
        let color = colors[row % colors.len()];
        for col in 0..torus.cols() {
            c.set_at(row, col, color);
        }
    }
    c
}

/// Vertical stripes: column `j` gets colour `colors[j mod colors.len()]`.
pub fn column_stripes(torus: &Torus, colors: &[Color]) -> Coloring {
    assert!(!colors.is_empty(), "need at least one stripe colour");
    let mut c = Coloring::uniform(torus, Color::UNSET);
    for col in 0..torus.cols() {
        let color = colors[col % colors.len()];
        for row in 0..torus.rows() {
            c.set_at(row, col, color);
        }
    }
    c
}

/// Diagonal stripes: cell `(i, j)` gets colour
/// `colors[(i + j) mod colors.len()]`.
pub fn diagonal_stripes(torus: &Torus, colors: &[Color]) -> Coloring {
    assert!(!colors.is_empty(), "need at least one stripe colour");
    let mut c = Coloring::uniform(torus, Color::UNSET);
    for row in 0..torus.rows() {
        for col in 0..torus.cols() {
            c.set_at(row, col, colors[(row + col) % colors.len()]);
        }
    }
    c
}

/// Checkerboard of two colours.
pub fn checkerboard(torus: &Torus, even: Color, odd: Color) -> Coloring {
    let mut c = Coloring::uniform(torus, Color::UNSET);
    for row in 0..torus.rows() {
        for col in 0..torus.cols() {
            c.set_at(row, col, if (row + col) % 2 == 0 { even } else { odd });
        }
    }
    c
}

/// "Brick" pattern: cell `(i, j)` gets colour
/// `colors[(j + offsets[i mod offsets.len()]) mod colors.len()]`, i.e.
/// column stripes whose phase shifts per row.
pub fn brick(torus: &Torus, colors: &[Color], offsets: &[usize]) -> Coloring {
    assert!(!colors.is_empty(), "need at least one brick colour");
    assert!(!offsets.is_empty(), "need at least one row offset");
    let mut c = Coloring::uniform(torus, Color::UNSET);
    for row in 0..torus.rows() {
        let off = offsets[row % offsets.len()];
        for col in 0..torus.cols() {
            c.set_at(row, col, colors[(col + off) % colors.len()]);
        }
    }
    c
}

/// A colouring where every cell carries the *least* palette colour,
/// except that all cells of the listed rows/columns carry `special`.
/// Convenience used by examples and tests.
pub fn background_with_cross(
    torus: &Torus,
    palette: &Palette,
    special: Color,
    rows: &[usize],
    cols: &[usize],
) -> Coloring {
    let background = palette
        .colors()
        .find(|&c| c != special)
        .expect("palette needs at least two colours");
    let mut c = Coloring::uniform(torus, background);
    for &row in rows {
        for col in 0..torus.cols() {
            c.set_at(row, col, special);
        }
    }
    for &col in cols {
        for row in 0..torus.rows() {
            c.set_at(row, col, special);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctori_topology::toroidal_mesh;

    fn colors(v: &[u16]) -> Vec<Color> {
        v.iter().map(|&i| Color::new(i)).collect()
    }

    #[test]
    fn row_stripes_period() {
        let t = toroidal_mesh(5, 4);
        let c = row_stripes(&t, &colors(&[1, 2, 3]));
        assert_eq!(c.at(0, 0), Color::new(1));
        assert_eq!(c.at(1, 3), Color::new(2));
        assert_eq!(c.at(2, 2), Color::new(3));
        assert_eq!(c.at(3, 0), Color::new(1));
        assert_eq!(c.at(4, 0), Color::new(2));
        assert!(!c.has_unset_cells());
    }

    #[test]
    fn column_stripes_period() {
        let t = toroidal_mesh(3, 6);
        let c = column_stripes(&t, &colors(&[1, 2]));
        for row in 0..3 {
            for col in 0..6 {
                assert_eq!(c.at(row, col), Color::new(1 + (col % 2) as u16));
            }
        }
    }

    #[test]
    fn diagonal_stripes_period() {
        let t = toroidal_mesh(4, 4);
        let c = diagonal_stripes(&t, &colors(&[1, 2, 3]));
        assert_eq!(c.at(0, 0), Color::new(1));
        assert_eq!(c.at(1, 1), Color::new(3));
        assert_eq!(c.at(2, 2), Color::new(2));
        assert_eq!(c.at(3, 3), Color::new(1));
    }

    #[test]
    fn checkerboard_alternates() {
        let t = toroidal_mesh(3, 3);
        let c = checkerboard(&t, Color::new(1), Color::new(2));
        assert_eq!(c.at(0, 0), Color::new(1));
        assert_eq!(c.at(0, 1), Color::new(2));
        assert_eq!(c.at(1, 0), Color::new(2));
        assert_eq!(c.at(1, 1), Color::new(1));
        assert_eq!(c.count(Color::new(1)), 5);
        assert_eq!(c.count(Color::new(2)), 4);
    }

    #[test]
    fn brick_shifts_per_row() {
        let t = toroidal_mesh(4, 6);
        let c = brick(&t, &colors(&[1, 2, 3]), &[0, 1]);
        assert_eq!(c.at(0, 0), Color::new(1));
        assert_eq!(c.at(1, 0), Color::new(2)); // offset 1
        assert_eq!(c.at(2, 0), Color::new(1)); // offsets repeat
        assert_eq!(c.at(1, 2), Color::new(1)); // (2 + 1) % 3 = 0
    }

    #[test]
    fn cross_pattern() {
        let t = toroidal_mesh(4, 4);
        let p = Palette::new(3);
        let c = background_with_cross(&t, &p, Color::new(2), &[0], &[0]);
        assert_eq!(c.at(0, 2), Color::new(2));
        assert_eq!(c.at(2, 0), Color::new(2));
        assert_eq!(c.at(2, 2), Color::new(1));
        assert_eq!(c.count(Color::new(2)), 4 + 4 - 1);
    }

    #[test]
    #[should_panic(expected = "at least one stripe colour")]
    fn empty_stripe_palette_panics() {
        let t = toroidal_mesh(2, 2);
        let _ = row_stripes(&t, &[]);
    }
}
