//! # ctori-coloring
//!
//! Colours, palettes, colourings and pattern builders for the
//! *Dynamic Monopolies in Colored Tori* reproduction.
//!
//! The paper works with a finite colour set `C = {1, …, k}` and a colouring
//! `r : V → C` of a torus (Section II.B).  This crate provides:
//!
//! * [`Color`] — a compact colour identifier (the paper's `1..=k`);
//! * [`Palette`] — the finite colour set `C`, with iteration helpers;
//! * [`Coloring`] — a colouring of an `m × n` grid, the mutable state the
//!   simulation engine evolves;
//! * [`ColoringBuilder`] — ergonomic construction of initial configurations
//!   (rows, columns, rectangles, individual cells);
//! * [`patterns`] — deterministic fillers (stripes, bricks, checkerboards)
//!   and random colourings used by the Theorem 2/4/6 constructions and the
//!   experiments;
//! * [`render`] — ASCII rendering of colourings and of recolouring-time
//!   matrices (the format of Figures 1–6 of the paper);
//! * [`classes`] — colour-class extraction (`V^k`, `S^k`) as vertex sets.
//!
//! # Example
//!
//! ```
//! use ctori_topology::toroidal_mesh;
//! use ctori_coloring::{Color, Coloring, Palette};
//!
//! let torus = toroidal_mesh(4, 4);
//! let palette = Palette::new(4);
//! let mut coloring = Coloring::uniform(&torus, Color::new(1));
//! coloring.set_coord(&torus, (0, 0).into(), Color::new(2));
//! assert_eq!(coloring.count(Color::new(2)), 1);
//! assert!(palette.contains(Color::new(4)));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod builder;
pub mod classes;
pub mod color;
pub mod coloring;
pub mod patterns;
pub mod random;
pub mod render;
pub mod textio;

pub use builder::ColoringBuilder;
pub use classes::{color_class, color_classes, monochromatic_color};
pub use color::{Color, Palette};
pub use coloring::Coloring;
pub use render::{render_coloring, render_highlight, render_side_by_side, render_time_matrix};
