//! Colour classes (`V^k`) as vertex sets.

use crate::color::{Color, Palette};
use crate::coloring::Coloring;
use ctori_topology::{NodeId, NodeSet};

/// The set `V^k` of vertices carrying the given colour.
pub fn color_class(coloring: &Coloring, color: Color) -> NodeSet {
    let mut set = NodeSet::new(coloring.len());
    for (i, &c) in coloring.cells().iter().enumerate() {
        if c == color {
            set.insert(NodeId::new(i));
        }
    }
    set
}

/// All colour classes of a palette, as `(colour, V^colour)` pairs.
pub fn color_classes(coloring: &Coloring, palette: &Palette) -> Vec<(Color, NodeSet)> {
    palette
        .colors()
        .map(|c| (c, color_class(coloring, c)))
        .collect()
}

/// The vertices *not* carrying the given colour (the paper's `T − S^k`
/// complement used when looking for non-`k`-blocks).
pub fn non_color_class(coloring: &Coloring, color: Color) -> NodeSet {
    let mut set = NodeSet::new(coloring.len());
    for (i, &c) in coloring.cells().iter().enumerate() {
        if c != color {
            set.insert(NodeId::new(i));
        }
    }
    set
}

/// If the colouring is monochromatic, returns its colour (alias of
/// [`Coloring::monochromatic`] kept here for discoverability next to the
/// class helpers).
pub fn monochromatic_color(coloring: &Coloring) -> Option<Color> {
    coloring.monochromatic()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctori_topology::toroidal_mesh;

    #[test]
    fn classes_partition_the_vertices() {
        let t = toroidal_mesh(3, 3);
        let mut col = Coloring::uniform(&t, Color::new(1));
        col.set_at(0, 0, Color::new(2));
        col.set_at(1, 1, Color::new(2));
        col.set_at(2, 2, Color::new(3));

        let palette = Palette::new(3);
        let classes = color_classes(&col, &palette);
        let total: usize = classes.iter().map(|(_, s)| s.count()).sum();
        assert_eq!(total, 9);
        assert_eq!(classes[0].1.count(), 6);
        assert_eq!(classes[1].1.count(), 2);
        assert_eq!(classes[2].1.count(), 1);
    }

    #[test]
    fn class_and_complement_are_disjoint_and_cover() {
        let t = toroidal_mesh(4, 4);
        let mut col = Coloring::uniform(&t, Color::new(1));
        col.set_at(0, 0, Color::new(2));
        let k = Color::new(2);
        let v_k = color_class(&col, k);
        let rest = non_color_class(&col, k);
        assert_eq!(v_k.count() + rest.count(), 16);
        for v in v_k.iter() {
            assert!(!rest.contains(v));
        }
    }

    #[test]
    fn monochromatic_helper() {
        let t = toroidal_mesh(2, 2);
        let col = Coloring::uniform(&t, Color::new(3));
        assert_eq!(monochromatic_color(&col), Some(Color::new(3)));
        let mut col2 = col.clone();
        col2.set_at(0, 0, Color::new(1));
        assert_eq!(monochromatic_color(&col2), None);
    }
}
