//! Plain-text (de)serialization of colourings.
//!
//! Configurations are stored as the same glyph grid produced by
//! [`crate::render::render_coloring`], so a saved experiment artefact can be
//! pasted straight back into a test.  We intentionally avoid pulling a
//! serialization format crate: the grids are tiny and the format is
//! human-diffable.

use crate::color::Color;
use crate::coloring::Coloring;

/// Errors produced when parsing a colouring from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The input contained no rows.
    Empty,
    /// Two rows had different lengths.
    RaggedRows {
        /// Length of the first row.
        expected: usize,
        /// Index of the offending row.
        row: usize,
        /// Its length.
        got: usize,
    },
    /// A glyph was not a valid colour character.
    BadGlyph {
        /// The offending character.
        glyph: char,
        /// Row of the offending character.
        row: usize,
        /// Column of the offending character.
        col: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty colouring text"),
            ParseError::RaggedRows { expected, row, got } => write!(
                f,
                "row {row} has {got} cells but the first row has {expected}"
            ),
            ParseError::BadGlyph { glyph, row, col } => {
                write!(
                    f,
                    "invalid colour glyph {glyph:?} at row {row}, column {col}"
                )
            }
        }
    }
}

impl std::error::Error for ParseError {}

fn glyph_to_color(ch: char) -> Option<Color> {
    match ch {
        '.' => Some(Color::UNSET),
        '0'..='9' => {
            let v = ch as u16 - '0' as u16;
            if v == 0 {
                None
            } else {
                Some(Color(v))
            }
        }
        'a'..='z' => Some(Color(10 + (ch as u16 - 'a' as u16))),
        _ => None,
    }
}

/// Serializes a colouring to the glyph-grid text format.
pub fn to_text(coloring: &Coloring) -> String {
    crate::render::render_coloring(coloring)
}

/// Parses a colouring from the glyph-grid text format.
///
/// Whitespace between glyphs is ignored; blank lines are skipped.
pub fn from_text(text: &str) -> Result<Coloring, ParseError> {
    let mut rows: Vec<Vec<Color>> = Vec::new();
    for (row_idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut row = Vec::new();
        for (col_idx, ch) in line
            .split_whitespace()
            .flat_map(|tok| tok.chars())
            .enumerate()
        {
            match glyph_to_color(ch) {
                Some(c) => row.push(c),
                None => {
                    return Err(ParseError::BadGlyph {
                        glyph: ch,
                        row: row_idx,
                        col: col_idx,
                    })
                }
            }
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(ParseError::Empty);
    }
    let expected = rows[0].len();
    for (i, row) in rows.iter().enumerate() {
        if row.len() != expected {
            return Err(ParseError::RaggedRows {
                expected,
                row: i,
                got: row.len(),
            });
        }
    }
    Ok(Coloring::from_rows(&rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctori_topology::toroidal_mesh;

    #[test]
    fn roundtrip() {
        let t = toroidal_mesh(3, 4);
        let mut c = Coloring::uniform(&t, Color::new(1));
        c.set_at(0, 0, Color::new(2));
        c.set_at(2, 3, Color::new(12)); // glyph 'c'
        let text = to_text(&c);
        let parsed = from_text(&text).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn parses_paper_style_figure() {
        let text = "\
            2 2 2 2\n\
            2 1 3 1\n\
            2 1 4 1\n";
        let c = from_text(text).unwrap();
        assert_eq!(c.rows(), 3);
        assert_eq!(c.cols(), 4);
        assert_eq!(c.at(0, 0), Color::new(2));
        assert_eq!(c.at(2, 2), Color::new(4));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "1 1\n\n2 2\n";
        let c = from_text(text).unwrap();
        assert_eq!(c.rows(), 2);
    }

    #[test]
    fn errors_are_reported() {
        assert_eq!(from_text(""), Err(ParseError::Empty));
        assert!(matches!(
            from_text("1 1\n1\n"),
            Err(ParseError::RaggedRows { .. })
        ));
        assert!(matches!(
            from_text("1 X\n"),
            Err(ParseError::BadGlyph { glyph: 'X', .. })
        ));
        // glyph '0' is not a valid colour
        assert!(matches!(
            from_text("0 1\n"),
            Err(ParseError::BadGlyph { glyph: '0', .. })
        ));
    }

    #[test]
    fn error_display_messages() {
        let e = ParseError::RaggedRows {
            expected: 3,
            row: 2,
            got: 1,
        };
        assert!(e.to_string().contains("row 2"));
        let e = ParseError::BadGlyph {
            glyph: '!',
            row: 0,
            col: 1,
        };
        assert!(e.to_string().contains("'!'"));
    }

    #[test]
    fn unset_cells_roundtrip() {
        let text = "1 .\n. 2\n";
        let c = from_text(text).unwrap();
        assert!(c.has_unset_cells());
        assert_eq!(to_text(&c), "1 .\n. 2\n");
    }
}
