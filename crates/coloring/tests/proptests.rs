//! Property-based tests for colourings, patterns and text round-trips.

use ctori_coloring::{classes, patterns, textio, Color, Coloring, Palette};
use ctori_topology::toroidal_mesh;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dims() -> impl Strategy<Value = (usize, usize)> {
    (2usize..=10, 2usize..=10)
}

proptest! {
    /// Text serialization round-trips for any random colouring with up to
    /// 35 colours (the glyph alphabet).
    #[test]
    fn text_roundtrip((m, n) in dims(), seed in any::<u64>(), colors in 1u16..=35) {
        let torus = toroidal_mesh(m, n);
        let palette = Palette::new(colors);
        let mut rng = StdRng::seed_from_u64(seed);
        let coloring = ctori_coloring::random::uniform_random(&torus, &palette, &mut rng);
        let text = textio::to_text(&coloring);
        let parsed = textio::from_text(&text).expect("parses");
        prop_assert_eq!(parsed, coloring);
    }

    /// Colour classes partition the vertex set: every vertex belongs to
    /// exactly one class and the class sizes sum to m*n.
    #[test]
    fn classes_partition((m, n) in dims(), seed in any::<u64>(), colors in 1u16..=6) {
        let torus = toroidal_mesh(m, n);
        let palette = Palette::new(colors);
        let mut rng = StdRng::seed_from_u64(seed);
        let coloring = ctori_coloring::random::uniform_random(&torus, &palette, &mut rng);
        let all = classes::color_classes(&coloring, &palette);
        let total: usize = all.iter().map(|(_, s)| s.count()).sum();
        prop_assert_eq!(total, m * n);
        for (color, class) in &all {
            for v in class.iter() {
                prop_assert_eq!(coloring.get(v), *color);
            }
        }
    }

    /// The histogram agrees with per-colour counts and sums to the number
    /// of cells.
    #[test]
    fn histogram_consistency((m, n) in dims(), seed in any::<u64>(), colors in 1u16..=6) {
        let torus = toroidal_mesh(m, n);
        let palette = Palette::new(colors);
        let mut rng = StdRng::seed_from_u64(seed);
        let coloring = ctori_coloring::random::uniform_random(&torus, &palette, &mut rng);
        let histogram = coloring.histogram(&palette);
        let total: usize = histogram.iter().map(|(_, count)| count).sum();
        prop_assert_eq!(total, m * n);
        for (color, count) in histogram {
            prop_assert_eq!(count, coloring.count(color));
        }
    }

    /// Stripe patterns use exactly the requested colours and assign the
    /// expected colour to every cell.
    #[test]
    fn stripes_are_periodic((m, n) in dims(), period in 1usize..=4) {
        let torus = toroidal_mesh(m, n);
        let stripe_colors: Vec<Color> = (1..=period as u16).map(Color::new).collect();
        let rows = patterns::row_stripes(&torus, &stripe_colors);
        let cols = patterns::column_stripes(&torus, &stripe_colors);
        for i in 0..m {
            for j in 0..n {
                prop_assert_eq!(rows.at(i, j), stripe_colors[i % period]);
                prop_assert_eq!(cols.at(i, j), stripe_colors[j % period]);
            }
        }
    }

    /// `map_colors` with the identity is a no-op, and with a constant maps
    /// everything to that constant.
    #[test]
    fn map_colors_laws((m, n) in dims(), seed in any::<u64>()) {
        let torus = toroidal_mesh(m, n);
        let palette = Palette::new(5);
        let mut rng = StdRng::seed_from_u64(seed);
        let coloring = ctori_coloring::random::uniform_random(&torus, &palette, &mut rng);
        prop_assert_eq!(coloring.map_colors(|c| c), coloring.clone());
        let constant = coloring.map_colors(|_| Color::new(7));
        prop_assert!(constant.is_monochromatic_in(Color::new(7)));
    }

    /// A monochromatic colouring reports its colour, and flipping a single
    /// cell destroys monochromaticity (for grids with more than one cell).
    #[test]
    fn monochromatic_detection((m, n) in dims(), color in 1u16..=9) {
        let torus = toroidal_mesh(m, n);
        let uniform = Coloring::uniform(&torus, Color::new(color));
        prop_assert_eq!(uniform.monochromatic(), Some(Color::new(color)));
        let mut touched = uniform;
        touched.set_at(0, 0, Color::new(color + 1));
        prop_assert_eq!(touched.monochromatic(), None);
    }
}
