//! The minimal topology interface consumed by the simulation engine.

use crate::node::NodeId;

/// A finite undirected graph whose vertices are densely numbered
/// `0..node_count()`.
///
/// This is the only interface the simulation engine and the dynamo
/// machinery need.  [`crate::Torus`] implements it arithmetically (nothing
/// stored per vertex); [`crate::Graph`] implements it with adjacency lists;
/// [`crate::Adjacency`] implements it over its own CSR arrays.
///
/// The neighbour primitive is the **non-allocating**
/// [`for_each_neighbor`](Topology::for_each_neighbor) callback walk.  Code
/// that needs the neighbourhood as a list should reuse a scratch buffer
/// through [`neighbors_into`](Topology::neighbors_into); hot loops should
/// flatten the topology once into a [`crate::Adjacency`] CSR and index
/// slices.  (The old `Vec`-returning `neighbors` accessor was deprecated
/// in favour of these and has been removed.)
pub trait Topology {
    /// Number of vertices.
    fn node_count(&self) -> usize;

    /// Calls `f` once per neighbour of `v`, allocating nothing.
    ///
    /// For the paper's tori this visits exactly 4 vertices; general graphs
    /// may have arbitrary degrees.  The callback is `&mut dyn FnMut` so the
    /// trait stays object-safe.
    fn for_each_neighbor(&self, v: NodeId, f: &mut dyn FnMut(NodeId));

    /// Clears `out` and fills it with the neighbours of `v`, reusing the
    /// buffer's capacity.
    fn neighbors_into(&self, v: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        self.for_each_neighbor(v, &mut |u| out.push(u));
    }

    /// Degree of `v`; the default implementation counts the neighbour walk
    /// without materialising it.
    fn degree(&self, v: NodeId) -> usize {
        let mut count = 0;
        self.for_each_neighbor(v, &mut |_| count += 1);
        count
    }

    /// Iterates over all vertex identifiers.
    fn nodes(&self) -> Box<dyn Iterator<Item = NodeId> + '_> {
        Box::new((0..self.node_count()).map(NodeId::new))
    }

    /// Total number of undirected edges (each edge counted once), derived
    /// from the allocation-free degree sum.
    fn edge_count_total(&self) -> usize {
        let twice: usize = (0..self.node_count())
            .map(|v| self.degree(NodeId::new(v)))
            .sum();
        twice / 2
    }
}

impl<T: Topology + ?Sized> Topology for &T {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }
    fn for_each_neighbor(&self, v: NodeId, f: &mut dyn FnMut(NodeId)) {
        (**self).for_each_neighbor(v, f)
    }
    fn neighbors_into(&self, v: NodeId, out: &mut Vec<NodeId>) {
        (**self).neighbors_into(v, out)
    }
    fn degree(&self, v: NodeId) -> usize {
        (**self).degree(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::torus::{Torus, TorusKind};

    #[test]
    fn trait_object_usable() {
        let t = Torus::new(TorusKind::ToroidalMesh, 3, 3);
        let dyn_t: &dyn Topology = &t;
        assert_eq!(dyn_t.node_count(), 9);
        assert_eq!(dyn_t.degree(NodeId::new(0)), 4);
        assert_eq!(dyn_t.nodes().count(), 9);
        assert_eq!(dyn_t.edge_count_total(), 18);
        let mut visited = 0;
        dyn_t.for_each_neighbor(NodeId::new(0), &mut |_| visited += 1);
        assert_eq!(visited, 4);
    }

    #[test]
    fn reference_impl_delegates() {
        let t = Torus::new(TorusKind::TorusCordalis, 4, 4);
        let r = &t;
        assert_eq!(Topology::node_count(&r), 16);
        assert_eq!(Topology::degree(&r, NodeId::new(5)), 4);
        let mut via_ref = Vec::new();
        Topology::neighbors_into(&r, NodeId::new(5), &mut via_ref);
        assert_eq!(via_ref, t.neighbor_ids(NodeId::new(5)).to_vec());
    }

    #[test]
    fn neighbors_into_reuses_the_buffer() {
        let t = Torus::new(TorusKind::TorusSerpentinus, 4, 4);
        let mut buf = Vec::with_capacity(4);
        let capacity = buf.capacity();
        for v in 0..t.node_count() {
            t.neighbors_into(NodeId::new(v), &mut buf);
            assert_eq!(buf.len(), 4);
            assert_eq!(buf.capacity(), capacity, "buffer must not reallocate");
        }
    }
}
