//! The minimal topology interface consumed by the simulation engine.

use crate::node::NodeId;

/// A finite undirected graph whose vertices are densely numbered
/// `0..node_count()`.
///
/// This is the only interface the simulation engine and the dynamo
/// machinery need.  [`crate::Torus`] implements it arithmetically (nothing
/// stored per vertex); [`crate::Graph`] implements it with adjacency lists.
pub trait Topology {
    /// Number of vertices.
    fn node_count(&self) -> usize;

    /// The neighbours of `v`.
    ///
    /// For the paper's tori this always has length 4; general graphs may
    /// have arbitrary degrees.
    fn neighbors(&self, v: NodeId) -> Vec<NodeId>;

    /// Degree of `v`; default implementation counts the neighbour list.
    fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// Iterates over all vertex identifiers.
    fn nodes(&self) -> Box<dyn Iterator<Item = NodeId> + '_> {
        Box::new((0..self.node_count()).map(NodeId::new))
    }

    /// Total number of undirected edges (each edge counted once).
    fn edge_count_total(&self) -> usize {
        let twice: usize = (0..self.node_count())
            .map(|v| self.degree(NodeId::new(v)))
            .sum();
        twice / 2
    }
}

impl<T: Topology + ?Sized> Topology for &T {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }
    fn neighbors(&self, v: NodeId) -> Vec<NodeId> {
        (**self).neighbors(v)
    }
    fn degree(&self, v: NodeId) -> usize {
        (**self).degree(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::torus::{Torus, TorusKind};

    #[test]
    fn trait_object_usable() {
        let t = Torus::new(TorusKind::ToroidalMesh, 3, 3);
        let dyn_t: &dyn Topology = &t;
        assert_eq!(dyn_t.node_count(), 9);
        assert_eq!(dyn_t.degree(NodeId::new(0)), 4);
        assert_eq!(dyn_t.nodes().count(), 9);
        assert_eq!(dyn_t.edge_count_total(), 18);
    }

    #[test]
    fn reference_impl_delegates() {
        let t = Torus::new(TorusKind::TorusCordalis, 4, 4);
        let r = &t;
        assert_eq!(Topology::node_count(&r), 16);
        assert_eq!(Topology::degree(&r, NodeId::new(5)), 4);
        assert_eq!(
            Topology::neighbors(&r, NodeId::new(5)),
            t.neighbors(NodeId::new(5))
        );
    }
}
