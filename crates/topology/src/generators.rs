//! Random graph generators used as synthetic social networks.
//!
//! The paper's future-work section asks how the SMP-Protocol behaves on
//! scale-free networks; since no real social-network trace ships with this
//! repository, the experiments use the standard synthetic models below
//! (documented as a substitution in DESIGN.md).
//!
//! The generators live here — next to [`Graph`] — rather than in the TSS
//! crate so that the engine's declarative `TopologySpec` can name them
//! without a dependency cycle; `ctori-tss` re-exports this module under its
//! historical path.

use crate::graph::Graph;
use crate::node::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;

/// Barabási–Albert preferential-attachment graph.
///
/// Starts from a clique of `m_edges + 1` vertices and attaches each new
/// vertex to `m_edges` distinct existing vertices chosen with probability
/// proportional to their degree.
///
/// # Panics
///
/// Panics if `nodes <= m_edges` or `m_edges == 0`.
pub fn barabasi_albert<R: Rng + ?Sized>(nodes: usize, m_edges: usize, rng: &mut R) -> Graph {
    assert!(m_edges >= 1, "each new vertex needs at least one edge");
    assert!(nodes > m_edges, "need more vertices than edges per step");

    let mut g = Graph::with_nodes(nodes);
    // Repeated-endpoints list: picking a uniform element of this list is
    // equivalent to degree-proportional sampling.
    let mut endpoints: Vec<usize> = Vec::with_capacity(2 * nodes * m_edges);

    let core = m_edges + 1;
    for u in 0..core {
        for v in (u + 1)..core {
            g.add_edge(NodeId::new(u), NodeId::new(v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }

    for v in core..nodes {
        let mut targets: Vec<usize> = Vec::with_capacity(m_edges);
        while targets.len() < m_edges {
            let candidate = endpoints[rng.gen_range(0..endpoints.len())];
            if candidate != v && !targets.contains(&candidate) {
                targets.push(candidate);
            }
        }
        for &t in &targets {
            g.add_edge(NodeId::new(v), NodeId::new(t));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)` graph.
pub fn erdos_renyi<R: Rng + ?Sized>(nodes: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut g = Graph::with_nodes(nodes);
    for u in 0..nodes {
        for v in (u + 1)..nodes {
            if rng.gen_bool(p) {
                g.add_edge(NodeId::new(u), NodeId::new(v));
            }
        }
    }
    g
}

/// Ring lattice: `nodes` vertices on a cycle, each connected to its
/// `neighbors_per_side` nearest neighbours on each side (a degree-4 ring
/// with `neighbors_per_side = 2` is the 1-dimensional analogue of the
/// paper's tori).
pub fn ring_lattice(nodes: usize, neighbors_per_side: usize) -> Graph {
    assert!(
        nodes > 2 * neighbors_per_side,
        "ring too small for that degree"
    );
    let mut g = Graph::with_nodes(nodes);
    for u in 0..nodes {
        for d in 1..=neighbors_per_side {
            let v = (u + d) % nodes;
            g.add_edge(NodeId::new(u), NodeId::new(v));
        }
    }
    g
}

/// A Watts–Strogatz-style rewired ring: start from [`ring_lattice`] and
/// rewire each edge with probability `beta` to a uniformly random
/// endpoint.  Used to interpolate between the lattice-like tori of the
/// paper and fully random networks in the future-work experiment.
pub fn small_world<R: Rng + ?Sized>(
    nodes: usize,
    neighbors_per_side: usize,
    beta: f64,
    rng: &mut R,
) -> Graph {
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    let base = ring_lattice(nodes, neighbors_per_side);
    let mut g = Graph::with_nodes(nodes);
    let all: Vec<usize> = (0..nodes).collect();
    for (u, v) in base.edges() {
        if rng.gen_bool(beta) {
            // rewire: keep u, pick a fresh endpoint
            let mut w = *all.choose(rng).expect("non-empty");
            let mut guard = 0;
            while (w == u.index() || g.has_edge(u, NodeId::new(w))) && guard < 100 {
                w = *all.choose(rng).expect("non-empty");
                guard += 1;
            }
            if w != u.index() && !g.has_edge(u, NodeId::new(w)) {
                g.add_edge(u, NodeId::new(w));
                continue;
            }
        }
        if !g.has_edge(u, v) {
            g.add_edge(u, v);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn barabasi_albert_basic_properties() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = barabasi_albert(300, 3, &mut rng);
        assert_eq!(g.node_count(), 300);
        // Each of the 300 - 4 attached vertices adds exactly 3 edges on top
        // of the initial clique of 4 (6 edges).
        assert_eq!(g.edge_count(), 6 + (300 - 4) * 3);
        // Scale-free graphs have hubs: the maximum degree should be well
        // above the attachment parameter.
        assert!(
            g.max_degree() >= 10,
            "expected a hub, got {}",
            g.max_degree()
        );
        // Every attached vertex has degree >= 3.
        for v in 0..300 {
            assert!(g.degree(NodeId::new(v)) >= 3);
        }
    }

    #[test]
    fn barabasi_albert_is_deterministic_per_seed() {
        let a = barabasi_albert(100, 2, &mut StdRng::seed_from_u64(9));
        let b = barabasi_albert(100, 2, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "more vertices than edges")]
    fn barabasi_albert_rejects_tiny_graphs() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = barabasi_albert(3, 3, &mut rng);
    }

    #[test]
    fn erdos_renyi_edge_count_scales_with_p() {
        let mut rng = StdRng::seed_from_u64(5);
        let sparse = erdos_renyi(100, 0.02, &mut rng);
        let dense = erdos_renyi(100, 0.3, &mut rng);
        assert!(sparse.edge_count() < dense.edge_count());
        assert_eq!(erdos_renyi(50, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(erdos_renyi(20, 1.0, &mut rng).edge_count(), 190);
    }

    #[test]
    fn ring_lattice_is_regular() {
        let g = ring_lattice(20, 2);
        assert_eq!(g.edge_count(), 40);
        for v in 0..20 {
            assert_eq!(g.degree(NodeId::new(v)), 4);
        }
    }

    #[test]
    fn small_world_preserves_edge_budget_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = small_world(100, 2, 0.1, &mut rng);
        // Rewiring can drop an edge only when it fails to find a fresh
        // endpoint, so the count stays close to the lattice's 200.
        assert!(g.edge_count() >= 190 && g.edge_count() <= 200);
        let g0 = small_world(100, 2, 0.0, &mut rng);
        assert_eq!(g0.edge_count(), 200);
    }
}
