//! Dense vertex identifiers.
//!
//! All topologies in this workspace number their vertices `0..node_count()`
//! in row-major order, so a vertex can be stored as a single `u32`-backed
//! [`NodeId`].  Keeping the identifier at 4 bytes (instead of `usize`)
//! matters for the exhaustive searches in `ctori-core`, which hold millions
//! of candidate vertex sets in memory.

/// A dense vertex identifier, valid for a specific topology instance.
///
/// `NodeId` is just an index; it carries no reference to the topology that
/// produced it.  Mixing identifiers across topologies of different sizes is
/// a logic error that the debug assertions in [`crate::Torus`] will catch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Creates a node identifier from a raw index.
    #[inline]
    pub fn new(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "node index overflows u32");
        NodeId(index as u32)
    }

    /// Returns the raw index as a `usize`, suitable for indexing slices.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for NodeId {
    #[inline]
    fn from(index: usize) -> Self {
        NodeId::new(index)
    }
}

impl From<NodeId> for usize {
    #[inline]
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_usize() {
        for i in [0usize, 1, 17, 65_535, 1_000_000] {
            let id = NodeId::new(i);
            assert_eq!(id.index(), i);
            assert_eq!(usize::from(id), i);
            assert_eq!(NodeId::from(i), id);
        }
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId::new(42).to_string(), "v42");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(3) < NodeId::new(10));
        assert_eq!(NodeId::new(7), NodeId::new(7));
    }
}
