//! A general adjacency-list graph.
//!
//! The paper's results are all on tori, but its introduction (and its
//! "future work" section) motivates the protocol with diffusion on general
//! social networks.  The target-set-selection substrate (`ctori-tss`) and a
//! few internal algorithms (forest checks on induced colour classes) operate
//! on this representation.

use crate::node::NodeId;
use crate::topology::Topology;

/// An undirected graph stored as adjacency lists.
///
/// Parallel edges and self-loops are rejected; vertex identifiers are dense
/// (`0..node_count()`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Graph {
    adjacency: Vec<Vec<NodeId>>,
    edges: usize,
}

impl Graph {
    /// Creates an empty graph with no vertices.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates a graph with `n` isolated vertices.
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            adjacency: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Adds a new isolated vertex and returns its identifier.
    pub fn add_node(&mut self) -> NodeId {
        self.adjacency.push(Vec::new());
        NodeId::new(self.adjacency.len() - 1)
    }

    /// Adds an undirected edge between `u` and `v`.
    ///
    /// Returns `true` if the edge was newly added, `false` if it already
    /// existed.  Self-loops panic: none of the models in this workspace use
    /// them and they would silently distort the majority rules.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert_ne!(u, v, "self-loops are not supported");
        assert!(
            u.index() < self.adjacency.len() && v.index() < self.adjacency.len(),
            "edge endpoint out of range"
        );
        if self.adjacency[u.index()].contains(&v) {
            return false;
        }
        self.adjacency[u.index()].push(v);
        self.adjacency[v.index()].push(u);
        self.edges += 1;
        true
    }

    /// Whether `u` and `v` are adjacent.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adjacency
            .get(u.index())
            .map(|a| a.contains(&v))
            .unwrap_or(false)
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// The neighbours of `v` as a slice (no allocation).
    pub fn neighbors_slice(&self, v: NodeId) -> &[NodeId] {
        &self.adjacency[v.index()]
    }

    /// Iterates over every undirected edge once, as `(u, v)` with
    /// `u.index() < v.index()`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(u, nbrs)| {
            nbrs.iter()
                .filter(move |v| v.index() > u)
                .map(move |&v| (NodeId::new(u), v))
        })
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Average degree (0.0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.adjacency.is_empty() {
            0.0
        } else {
            2.0 * self.edges as f64 / self.adjacency.len() as f64
        }
    }
}

impl Topology for Graph {
    fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    fn for_each_neighbor(&self, v: NodeId, f: &mut dyn FnMut(NodeId)) {
        for &u in &self.adjacency[v.index()] {
            f(u);
        }
    }

    fn neighbors_into(&self, v: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend_from_slice(&self.adjacency[v.index()]);
    }

    fn degree(&self, v: NodeId) -> usize {
        self.adjacency[v.index()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_graph() {
        let mut g = Graph::with_nodes(4);
        assert!(g.add_edge(NodeId::new(0), NodeId::new(1)));
        assert!(g.add_edge(NodeId::new(1), NodeId::new(2)));
        assert!(
            !g.add_edge(NodeId::new(0), NodeId::new(1)),
            "duplicate edge"
        );
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.node_count(), 4);
        assert!(g.has_edge(NodeId::new(2), NodeId::new(1)));
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(3)));
        assert_eq!(g.degree(NodeId::new(1)), 2);
        assert_eq!(g.degree(NodeId::new(3)), 0);
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId::new(0), NodeId::new(0));
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId::new(0), NodeId::new(1));
        g.add_edge(NodeId::new(2), NodeId::new(1));
        g.add_edge(NodeId::new(3), NodeId::new(0));
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (u, v) in edges {
            assert!(u.index() < v.index());
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn degree_statistics() {
        let mut g = Graph::with_nodes(5);
        g.add_edge(NodeId::new(0), NodeId::new(1));
        g.add_edge(NodeId::new(0), NodeId::new(2));
        g.add_edge(NodeId::new(0), NodeId::new(3));
        assert_eq!(g.max_degree(), 3);
        assert!((g.average_degree() - 1.2).abs() < 1e-12);
        assert_eq!(Graph::new().max_degree(), 0);
        assert_eq!(Graph::new().average_degree(), 0.0);
    }
}
