//! # ctori-topology
//!
//! Interaction topologies for the *Dynamic Monopolies in Colored Tori*
//! reproduction (Brunetti, Lodi & Quattrociocchi, IPPS 2011).
//!
//! The paper studies three 4-regular topologies built on an `m × n` grid of
//! vertices (Section II.A of the paper):
//!
//! * the **toroidal mesh** — the standard 2-dimensional torus: rows and
//!   columns both wrap around on themselves;
//! * the **torus cordalis** — like the toroidal mesh, except that the last
//!   vertex `v[i][n-1]` of each row is connected to the first vertex
//!   `v[(i+1) mod m][0]` of the *next* row, so the rows chain into a single
//!   horizontal cycle of length `m·n`;
//! * the **torus serpentinus** — like the torus cordalis, and additionally
//!   the last vertex `v[m-1][j]` of each column is connected to the first
//!   vertex `v[0][(j-1) mod n]` of the *previous* column, so the columns
//!   also chain into a single vertical cycle.
//!
//! The crate provides:
//!
//! * [`Coord`] / [`NodeId`] — grid coordinates and dense vertex identifiers;
//! * [`Torus`] and [`TorusKind`] — the three torus topologies with O(1)
//!   arithmetic neighbourhood computation (nothing is stored per vertex);
//! * the [`Topology`] trait — the minimal interface the simulation engine
//!   needs (vertex count + non-allocating neighbourhood enumeration);
//! * [`Adjacency`] — the shared CSR kernel every hot loop in the workspace
//!   (simulator, diffusion, connectivity) flattens its topology into;
//! * [`Graph`] — a general adjacency-list graph used by the target-set
//!   selection substrate and by conversions from tori;
//! * [`generators`] — random graph models (Barabási–Albert, Erdős–Rényi,
//!   ring lattices, small worlds) shared by the TSS substrate and the
//!   engine's declarative topology specifications;
//! * [`NodeSet`] — a compact bit set over vertices;
//! * [`Rectangle`] and [`bounding_rectangle`] — the "smallest rectangle
//!   containing F" notion (`R_F`, `m_F × n_F`) used by Lemma 1 and
//!   Theorem 1 of the paper;
//! * connectivity helpers ([`connected_components`], [`is_forest`],
//!   [`induced_components`]) used to detect blocks, non-blocks and the
//!   forest hypothesis of Theorems 2, 4 and 6.
//!
//! # Example
//!
//! ```
//! use ctori_topology::{Torus, TorusKind, Topology, Coord};
//!
//! let t = Torus::new(TorusKind::ToroidalMesh, 4, 5);
//! assert_eq!(t.node_count(), 20);
//! // Every vertex of every torus in the paper has exactly four neighbours.
//! let v = t.id(Coord::new(0, 0));
//! assert_eq!(t.degree(v), 4);
//!
//! // Hot loops flatten the torus once into the shared CSR kernel.
//! use ctori_topology::Adjacency;
//! let adj = Adjacency::from_torus(&t);
//! assert_eq!(adj.neighbors_raw(v.index()).len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod adjacency;
pub mod connectivity;
pub mod coord;
pub mod generators;
pub mod graph;
pub mod node;
pub mod nodeset;
pub mod rectangle;
pub mod topology;
pub mod torus;

pub use adjacency::Adjacency;
pub use connectivity::{connected_components, induced_components, is_forest, ComponentLabels};
pub use coord::Coord;
pub use graph::Graph;
pub use node::NodeId;
pub use nodeset::NodeSet;
pub use rectangle::{bounding_rectangle, Rectangle};
pub use topology::Topology;
pub use torus::{Torus, TorusKind};

/// Convenience constructor for a toroidal mesh (the most common topology in
/// the paper's examples).
pub fn toroidal_mesh(m: usize, n: usize) -> Torus {
    Torus::new(TorusKind::ToroidalMesh, m, n)
}

/// Convenience constructor for a torus cordalis.
pub fn torus_cordalis(m: usize, n: usize) -> Torus {
    Torus::new(TorusKind::TorusCordalis, m, n)
}

/// Convenience constructor for a torus serpentinus.
pub fn torus_serpentinus(m: usize, n: usize) -> Torus {
    Torus::new(TorusKind::TorusSerpentinus, m, n)
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn convenience_constructors_match_kinds() {
        assert_eq!(toroidal_mesh(3, 4).kind(), TorusKind::ToroidalMesh);
        assert_eq!(torus_cordalis(3, 4).kind(), TorusKind::TorusCordalis);
        assert_eq!(torus_serpentinus(3, 4).kind(), TorusKind::TorusSerpentinus);
    }
}
