//! The three torus topologies of the paper.
//!
//! All three are 4-regular graphs on the vertex set
//! `{ v[i][j] : 0 ≤ i < m, 0 ≤ j < n }`.  They differ only in how the
//! "border" vertices wrap around (Definition 1 of the paper):
//!
//! * **toroidal mesh** — `v[i][j]` is adjacent to `v[(i±1) mod m][j]` and
//!   `v[i][(j±1) mod n]`;
//! * **torus cordalis** — as above, except the horizontal wrap edge
//!   `(i, n-1)–(i, 0)` is replaced by `(i, n-1)–((i+1) mod m, 0)`: the rows
//!   chain into a single cycle of length `m·n`;
//! * **torus serpentinus** — as the cordalis, and additionally the vertical
//!   wrap edge `(m-1, j)–(0, j)` is replaced by
//!   `(m-1, j)–(0, (j-1) mod n)`: the columns also chain into a single
//!   cycle of length `m·n`.
//!
//! Neighbourhoods are computed arithmetically; a [`Torus`] value is three
//! words regardless of its size.

use crate::coord::Coord;
use crate::graph::Graph;
use crate::node::NodeId;
use crate::topology::Topology;

/// Which of the three torus variants of Definition 1 a [`Torus`] represents.
///
/// Marked `#[non_exhaustive]`: future scenario work may add further wrap
/// variants, so downstream `match`es must keep a wildcard arm.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[non_exhaustive]
pub enum TorusKind {
    /// Standard 2-dimensional torus: both dimensions wrap onto themselves.
    ToroidalMesh,
    /// Rows chained into a single horizontal cycle (`(i, n-1)` connects to
    /// `((i+1) mod m, 0)`); columns wrap as in the toroidal mesh.
    TorusCordalis,
    /// Rows chained as in the cordalis *and* columns chained into a single
    /// vertical cycle (`(m-1, j)` connects to `(0, (j-1) mod n)`).
    TorusSerpentinus,
}

impl TorusKind {
    /// All three kinds, in the order the paper discusses them.
    pub const ALL: [TorusKind; 3] = [
        TorusKind::ToroidalMesh,
        TorusKind::TorusCordalis,
        TorusKind::TorusSerpentinus,
    ];

    /// Human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            TorusKind::ToroidalMesh => "toroidal mesh",
            TorusKind::TorusCordalis => "torus cordalis",
            TorusKind::TorusSerpentinus => "torus serpentinus",
        }
    }
}

impl std::fmt::Display for TorusKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An `m × n` torus of one of the three kinds of Definition 1.
///
/// Vertices are numbered row-major: `v[i][j]` has [`NodeId`] `i·n + j`.
///
/// # Panics
///
/// [`Torus::new`] panics if `m < 2` or `n < 2`: with a single row or column
/// the "four neighbours" of a vertex would degenerate into repeated
/// vertices, and the paper explicitly restricts itself to `m, n ≥ 2`
/// (Section III.A).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Torus {
    kind: TorusKind,
    m: usize,
    n: usize,
}

impl Torus {
    /// Creates an `m × n` torus of the given kind.
    pub fn new(kind: TorusKind, m: usize, n: usize) -> Self {
        assert!(
            m >= 2 && n >= 2,
            "the paper's tori require m, n >= 2 (got {m} x {n})"
        );
        Torus { kind, m, n }
    }

    /// The torus variant.
    #[inline]
    pub fn kind(&self) -> TorusKind {
        self.kind
    }

    /// Number of rows `m`.
    #[inline]
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Number of columns `n`.
    #[inline]
    pub fn cols(&self) -> usize {
        self.n
    }

    /// `min(m, n)`, written `N` in the paper (Proposition 3, Theorems 5/6).
    #[inline]
    pub fn min_dimension(&self) -> usize {
        self.m.min(self.n)
    }

    /// Converts a coordinate to its dense row-major identifier.
    #[inline]
    pub fn id(&self, c: Coord) -> NodeId {
        debug_assert!(c.row < self.m && c.col < self.n, "coordinate out of range");
        NodeId::new(c.to_index(self.n))
    }

    /// Converts a dense identifier back to its coordinate.
    #[inline]
    pub fn coord(&self, v: NodeId) -> Coord {
        debug_assert!(v.index() < self.m * self.n, "node id out of range");
        Coord::from_index(v.index(), self.n)
    }

    /// Iterates over all coordinates in row-major order.
    pub fn coords(&self) -> impl Iterator<Item = Coord> + '_ {
        let n = self.n;
        (0..self.m).flat_map(move |row| (0..n).map(move |col| Coord::new(row, col)))
    }

    /// The vertex "above" `c`, i.e. the neighbour reached by decreasing the
    /// row index, following the wrap rule of this torus kind.
    #[inline]
    pub fn north(&self, c: Coord) -> Coord {
        match self.kind {
            TorusKind::ToroidalMesh | TorusKind::TorusCordalis => c.up(self.m),
            TorusKind::TorusSerpentinus => {
                if c.row == 0 {
                    // Row 0 going up lands on the bottom of the *next*
                    // column: the serpentinus edge (m-1, j) – (0, (j-1) mod n)
                    // read in the other direction.
                    Coord::new(self.m - 1, (c.col + 1) % self.n)
                } else {
                    Coord::new(c.row - 1, c.col)
                }
            }
        }
    }

    /// The vertex "below" `c` (increasing row index, with wrap).
    #[inline]
    pub fn south(&self, c: Coord) -> Coord {
        match self.kind {
            TorusKind::ToroidalMesh | TorusKind::TorusCordalis => c.down(self.m),
            TorusKind::TorusSerpentinus => {
                if c.row == self.m - 1 {
                    // (m-1, j) connects down to (0, (j-1) mod n).
                    Coord::new(0, (c.col + self.n - 1) % self.n)
                } else {
                    Coord::new(c.row + 1, c.col)
                }
            }
        }
    }

    /// The vertex to the "left" of `c` (decreasing column index, with wrap).
    #[inline]
    pub fn west(&self, c: Coord) -> Coord {
        match self.kind {
            TorusKind::ToroidalMesh => c.left(self.n),
            TorusKind::TorusCordalis | TorusKind::TorusSerpentinus => {
                if c.col == 0 {
                    // (i, 0) connects left to ((i-1) mod m, n-1): the chain
                    // edge (i-1, n-1) – (i, 0) read backwards.
                    Coord::new((c.row + self.m - 1) % self.m, self.n - 1)
                } else {
                    Coord::new(c.row, c.col - 1)
                }
            }
        }
    }

    /// The vertex to the "right" of `c` (increasing column index, with wrap).
    #[inline]
    pub fn east(&self, c: Coord) -> Coord {
        match self.kind {
            TorusKind::ToroidalMesh => c.right(self.n),
            TorusKind::TorusCordalis | TorusKind::TorusSerpentinus => {
                if c.col == self.n - 1 {
                    // (i, n-1) connects right to ((i+1) mod m, 0).
                    Coord::new((c.row + 1) % self.m, 0)
                } else {
                    Coord::new(c.row, c.col + 1)
                }
            }
        }
    }

    /// The four neighbours of a coordinate, in `[north, south, west, east]`
    /// order.  Every vertex of every torus kind has exactly four
    /// neighbours (`|N(x)| = 4` in the paper).
    #[inline]
    pub fn neighbor_coords(&self, c: Coord) -> [Coord; 4] {
        [self.north(c), self.south(c), self.west(c), self.east(c)]
    }

    /// The four neighbours of a vertex as dense identifiers.
    #[inline]
    pub fn neighbor_ids(&self, v: NodeId) -> [NodeId; 4] {
        let c = self.coord(v);
        let [a, b, w, e] = self.neighbor_coords(c);
        [self.id(a), self.id(b), self.id(w), self.id(e)]
    }

    /// Whether two vertices are adjacent in this torus.
    pub fn adjacent(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbor_ids(u).contains(&v)
    }

    /// Materialises this torus as a general adjacency-list [`Graph`].
    ///
    /// Useful for code paths (connectivity, forests, TSS heuristics) that
    /// work on arbitrary graphs.  Note that on tori with a dimension of
    /// exactly 2 a vertex's neighbour list contains a repeated vertex
    /// (its north and south, or west and east, coincide); the simple graph
    /// collapses such multi-edges into one.
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::with_nodes(self.node_count());
        for v in 0..self.node_count() {
            let v = NodeId::new(v);
            for u in self.neighbor_ids(v) {
                if u.index() > v.index() {
                    g.add_edge(v, u);
                }
            }
        }
        g
    }
}

impl Topology for Torus {
    fn node_count(&self) -> usize {
        self.m * self.n
    }

    fn for_each_neighbor(&self, v: NodeId, f: &mut dyn FnMut(NodeId)) {
        for u in self.neighbor_ids(v) {
            f(u);
        }
    }

    fn degree(&self, _v: NodeId) -> usize {
        4
    }
}

impl std::fmt::Display for Torus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}x{}", self.kind.name(), self.m, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn degree_map(t: &Torus) -> HashMap<NodeId, usize> {
        // Count undirected edge endpoints; in a well-formed 4-regular graph
        // every vertex appears in exactly 4 neighbour lists.
        let mut deg: HashMap<NodeId, usize> = HashMap::new();
        for v in 0..t.node_count() {
            for u in t.neighbor_ids(NodeId::new(v)) {
                *deg.entry(u).or_insert(0) += 1;
            }
        }
        deg
    }

    #[test]
    fn toroidal_mesh_neighbors_match_definition() {
        let t = Torus::new(TorusKind::ToroidalMesh, 4, 5);
        let c = Coord::new(0, 0);
        let nbrs: HashSet<_> = t.neighbor_coords(c).into_iter().collect();
        let expected: HashSet<_> = [
            Coord::new(3, 0), // (i-1) mod m
            Coord::new(1, 0), // (i+1) mod m
            Coord::new(0, 4), // (j-1) mod n
            Coord::new(0, 1), // (j+1) mod n
        ]
        .into_iter()
        .collect();
        assert_eq!(nbrs, expected);
    }

    #[test]
    fn cordalis_row_end_connects_to_next_row_start() {
        let t = Torus::new(TorusKind::TorusCordalis, 4, 5);
        // (1, 4) -> east is (2, 0)
        assert_eq!(t.east(Coord::new(1, 4)), Coord::new(2, 0));
        // last row wraps to row 0
        assert_eq!(t.east(Coord::new(3, 4)), Coord::new(0, 0));
        // and the reverse direction
        assert_eq!(t.west(Coord::new(2, 0)), Coord::new(1, 4));
        assert_eq!(t.west(Coord::new(0, 0)), Coord::new(3, 4));
        // vertical edges still wrap straight up/down
        assert_eq!(t.north(Coord::new(0, 2)), Coord::new(3, 2));
        assert_eq!(t.south(Coord::new(3, 2)), Coord::new(0, 2));
    }

    #[test]
    fn serpentinus_column_end_connects_to_previous_column_start() {
        let t = Torus::new(TorusKind::TorusSerpentinus, 4, 5);
        // (3, j) -> south is (0, (j-1) mod n)
        assert_eq!(t.south(Coord::new(3, 2)), Coord::new(0, 1));
        assert_eq!(t.south(Coord::new(3, 0)), Coord::new(0, 4));
        // reverse direction: north of row 0 is the bottom of the next column
        assert_eq!(t.north(Coord::new(0, 1)), Coord::new(3, 2));
        assert_eq!(t.north(Coord::new(0, 4)), Coord::new(3, 0));
        // horizontal edges behave like the cordalis
        assert_eq!(t.east(Coord::new(1, 4)), Coord::new(2, 0));
    }

    #[test]
    fn all_kinds_are_4_regular() {
        for kind in TorusKind::ALL {
            for (m, n) in [(2, 2), (2, 5), (3, 3), (4, 5), (5, 4), (7, 3)] {
                let t = Torus::new(kind, m, n);
                let deg = degree_map(&t);
                for v in 0..t.node_count() {
                    assert_eq!(
                        deg.get(&NodeId::new(v)).copied().unwrap_or(0),
                        4,
                        "{kind} {m}x{n} vertex {v} is not 4-regular"
                    );
                }
            }
        }
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        for kind in TorusKind::ALL {
            let t = Torus::new(kind, 5, 6);
            for v in 0..t.node_count() {
                let v = NodeId::new(v);
                for u in t.neighbor_ids(v) {
                    assert!(
                        t.neighbor_ids(u).contains(&v),
                        "{kind}: edge {v}-{u} is not symmetric"
                    );
                }
            }
        }
    }

    #[test]
    fn directional_moves_are_inverses() {
        for kind in TorusKind::ALL {
            let t = Torus::new(kind, 5, 7);
            for c in t.coords() {
                assert_eq!(t.south(t.north(c)), c, "{kind}: north/south at {c}");
                assert_eq!(t.north(t.south(c)), c, "{kind}: south/north at {c}");
                assert_eq!(t.east(t.west(c)), c, "{kind}: west/east at {c}");
                assert_eq!(t.west(t.east(c)), c, "{kind}: east/west at {c}");
            }
        }
    }

    #[test]
    fn cordalis_horizontal_chain_is_a_single_cycle() {
        let t = Torus::new(TorusKind::TorusCordalis, 4, 5);
        // Following east repeatedly from (0,0) must visit all m*n vertices
        // before returning to the start.
        let start = Coord::new(0, 0);
        let mut c = start;
        let mut seen = 0;
        loop {
            c = t.east(c);
            seen += 1;
            if c == start {
                break;
            }
            assert!(seen <= t.node_count(), "chain did not close properly");
        }
        assert_eq!(seen, t.node_count());
    }

    #[test]
    fn serpentinus_vertical_chain_is_a_single_cycle() {
        let t = Torus::new(TorusKind::TorusSerpentinus, 4, 5);
        let start = Coord::new(0, 0);
        let mut c = start;
        let mut seen = 0;
        loop {
            c = t.south(c);
            seen += 1;
            if c == start {
                break;
            }
            assert!(seen <= t.node_count(), "chain did not close properly");
        }
        assert_eq!(seen, t.node_count());
    }

    #[test]
    fn toroidal_mesh_rows_and_columns_are_short_cycles() {
        let t = Torus::new(TorusKind::ToroidalMesh, 4, 5);
        // A row closes after n steps, a column after m steps.
        let mut c = Coord::new(2, 0);
        for _ in 0..t.cols() {
            c = t.east(c);
        }
        assert_eq!(c, Coord::new(2, 0));
        let mut c = Coord::new(0, 3);
        for _ in 0..t.rows() {
            c = t.south(c);
        }
        assert_eq!(c, Coord::new(0, 3));
    }

    #[test]
    fn id_coord_roundtrip() {
        for kind in TorusKind::ALL {
            let t = Torus::new(kind, 6, 4);
            for c in t.coords() {
                assert_eq!(t.coord(t.id(c)), c);
            }
            for v in 0..t.node_count() {
                let v = NodeId::new(v);
                assert_eq!(t.id(t.coord(v)), v);
            }
        }
    }

    #[test]
    fn to_graph_preserves_structure() {
        for kind in TorusKind::ALL {
            let t = Torus::new(kind, 4, 4);
            let g = t.to_graph();
            assert_eq!(g.node_count(), t.node_count());
            // 4-regular graph on mn vertices has 2mn edges.
            assert_eq!(g.edge_count(), 2 * t.node_count());
            for v in 0..t.node_count() {
                let v = NodeId::new(v);
                let mut a: Vec<_> = t.neighbor_ids(v).to_vec();
                let mut b: Vec<_> = g.neighbors_slice(v).to_vec();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "{kind}: adjacency mismatch at {v}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "m, n >= 2")]
    fn degenerate_torus_is_rejected() {
        let _ = Torus::new(TorusKind::ToroidalMesh, 1, 5);
    }

    #[test]
    fn display_names() {
        assert_eq!(
            Torus::new(TorusKind::ToroidalMesh, 3, 4).to_string(),
            "toroidal mesh 3x4"
        );
        assert_eq!(TorusKind::TorusSerpentinus.to_string(), "torus serpentinus");
    }
}
