//! The shared compressed-sparse-row (CSR) adjacency kernel.
//!
//! Every hot loop in the workspace — the synchronous simulator, the
//! linear-threshold diffusion, the connectivity sweeps — touches each
//! vertex's neighbourhood once per round.  Asking the [`Topology`] trait
//! for a fresh `Vec<NodeId>` per visit would allocate per vertex per round,
//! so all of them flatten the adjacency **once** into this structure and
//! the inner loops become pure slice indexing.
//!
//! [`Adjacency`] is built either generically from any [`Topology`] (via the
//! non-allocating [`Topology::for_each_neighbor`] walk) or arithmetically
//! from a [`Torus`] with the O(1) neighbour computation specialised per
//! [`TorusKind`] — no intermediate allocation in either case beyond the two
//! CSR arrays themselves.

use crate::node::NodeId;
use crate::topology::Topology;
use crate::torus::{Torus, TorusKind};

/// Flattened adjacency lists of a topology in CSR form.
///
/// `targets[offsets[v]..offsets[v+1]]` are the neighbour indices of vertex
/// `v`.  Indices are `u32` (half the footprint of `usize` on 64-bit
/// machines), which matters when millions of simulations stream over the
/// structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Adjacency {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Adjacency {
    /// Builds the CSR adjacency of any topology through the trait's
    /// non-allocating neighbour walk.
    pub fn build<T: Topology + ?Sized>(topology: &T) -> Self {
        let n = topology.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        offsets.push(0u32);
        for v in 0..n {
            topology.for_each_neighbor(NodeId::new(v), &mut |u| {
                targets.push(u.index() as u32);
            });
            offsets.push(targets.len() as u32);
        }
        Adjacency { offsets, targets }
    }

    /// Builds the CSR adjacency of a torus arithmetically.
    ///
    /// The wrap rule is specialised per [`TorusKind`]: the kind dispatch is
    /// hoisted out of the per-vertex loop and each kind's O(1) neighbour
    /// arithmetic is monomorphised into its own fill loop.  Every vertex
    /// has exactly four neighbours, so both arrays are sized exactly up
    /// front.
    pub fn from_torus(torus: &Torus) -> Self {
        let (m, n) = (torus.rows(), torus.cols());
        let count = m * n;
        let mut offsets = Vec::with_capacity(count + 1);
        let mut targets = Vec::with_capacity(4 * count);
        offsets.push(0u32);
        // [north, south, west, east] per vertex, matching Torus::neighbor_coords.
        match torus.kind() {
            TorusKind::ToroidalMesh => fill_torus(m, n, &mut offsets, &mut targets, |i, j| {
                [
                    ((i + m - 1) % m, j),
                    ((i + 1) % m, j),
                    (i, (j + n - 1) % n),
                    (i, (j + 1) % n),
                ]
            }),
            TorusKind::TorusCordalis => fill_torus(m, n, &mut offsets, &mut targets, |i, j| {
                [
                    ((i + m - 1) % m, j),
                    ((i + 1) % m, j),
                    if j == 0 {
                        ((i + m - 1) % m, n - 1)
                    } else {
                        (i, j - 1)
                    },
                    if j == n - 1 {
                        ((i + 1) % m, 0)
                    } else {
                        (i, j + 1)
                    },
                ]
            }),
            TorusKind::TorusSerpentinus => fill_torus(m, n, &mut offsets, &mut targets, |i, j| {
                [
                    if i == 0 {
                        (m - 1, (j + 1) % n)
                    } else {
                        (i - 1, j)
                    },
                    if i == m - 1 {
                        (0, (j + n - 1) % n)
                    } else {
                        (i + 1, j)
                    },
                    if j == 0 {
                        ((i + m - 1) % m, n - 1)
                    } else {
                        (i, j - 1)
                    },
                    if j == n - 1 {
                        ((i + 1) % m, 0)
                    } else {
                        (i, j + 1)
                    },
                ]
            }),
        }
        Adjacency { offsets, targets }
    }

    /// Number of vertices.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The neighbour indices of vertex `v` as a slice of raw indices.
    #[inline]
    pub fn neighbors_raw(&self, v: usize) -> &[u32] {
        let start = self.offsets[v] as usize;
        let end = self.offsets[v + 1] as usize;
        &self.targets[start..end]
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree_of(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// The maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count())
            .map(|v| self.degree_of(v))
            .max()
            .unwrap_or(0)
    }

    /// `Some(d)` if every vertex has degree exactly `d` (e.g. 4 on the
    /// paper's tori), letting hot loops pick fixed-arity fast paths.
    pub fn uniform_degree(&self) -> Option<usize> {
        let n = self.node_count();
        if n == 0 {
            return None;
        }
        let d = self.degree_of(0);
        (1..n).all(|v| self.degree_of(v) == d).then_some(d)
    }

    /// Total number of directed neighbour entries (`2·|E|` for graphs
    /// without repeated neighbours).
    #[inline]
    pub fn entry_count(&self) -> usize {
        self.targets.len()
    }
}

/// Specialised CSR fill: monomorphised per call site in
/// [`Adjacency::from_torus`], so each kind's wrap arithmetic inlines into
/// its own row-major loop without any per-vertex dispatch.
#[inline(always)]
fn fill_torus(
    m: usize,
    n: usize,
    offsets: &mut Vec<u32>,
    targets: &mut Vec<u32>,
    neighbors: impl Fn(usize, usize) -> [(usize, usize); 4],
) {
    for i in 0..m {
        for j in 0..n {
            for (r, c) in neighbors(i, j) {
                targets.push((r * n + c) as u32);
            }
            offsets.push(targets.len() as u32);
        }
    }
}

impl Topology for Adjacency {
    fn node_count(&self) -> usize {
        Adjacency::node_count(self)
    }

    fn for_each_neighbor(&self, v: NodeId, f: &mut dyn FnMut(NodeId)) {
        for &u in self.neighbors_raw(v.index()) {
            f(NodeId::new(u as usize));
        }
    }

    fn degree(&self, v: NodeId) -> usize {
        self.degree_of(v.index())
    }
}

impl From<&Torus> for Adjacency {
    fn from(torus: &Torus) -> Self {
        Adjacency::from_torus(torus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::{toroidal_mesh, torus_serpentinus};

    #[test]
    fn csr_matches_torus_neighbors() {
        let t = toroidal_mesh(4, 5);
        let adj = Adjacency::build(&t);
        assert_eq!(adj.node_count(), 20);
        assert_eq!(adj.max_degree(), 4);
        for v in 0..t.node_count() {
            let mut a: Vec<u32> = adj.neighbors_raw(v).to_vec();
            let mut b: Vec<u32> = t
                .neighbor_ids(NodeId::new(v))
                .iter()
                .map(|u| u.index() as u32)
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "adjacency mismatch at vertex {v}");
            assert_eq!(adj.degree_of(v), 4);
        }
    }

    #[test]
    fn arithmetic_build_matches_generic_build() {
        for kind in TorusKind::ALL {
            for (m, n) in [(2, 2), (2, 5), (3, 3), (4, 5), (7, 3)] {
                let t = Torus::new(kind, m, n);
                assert_eq!(
                    Adjacency::from_torus(&t),
                    Adjacency::build(&t),
                    "{kind} {m}x{n}"
                );
            }
        }
    }

    #[test]
    fn csr_handles_irregular_graphs() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId::new(0), NodeId::new(1));
        g.add_edge(NodeId::new(1), NodeId::new(2));
        g.add_edge(NodeId::new(1), NodeId::new(3));
        let adj = Adjacency::build(&g);
        assert_eq!(adj.degree_of(0), 1);
        assert_eq!(adj.degree_of(1), 3);
        assert_eq!(adj.degree_of(2), 1);
        assert_eq!(adj.max_degree(), 3);
        assert_eq!(adj.neighbors_raw(0), &[1]);
        assert_eq!(adj.entry_count(), 6);
    }

    #[test]
    fn csr_on_serpentinus() {
        let t = torus_serpentinus(3, 3);
        let adj = Adjacency::from_torus(&t);
        assert_eq!(adj.node_count(), 9);
        for v in 0..9 {
            assert_eq!(adj.degree_of(v), 4);
        }
    }

    #[test]
    fn csr_is_itself_a_topology() {
        let t = toroidal_mesh(4, 4);
        let adj = Adjacency::from_torus(&t);
        assert_eq!(Topology::node_count(&adj), 16);
        assert_eq!(Topology::degree(&adj, NodeId::new(3)), 4);
        assert_eq!(adj.edge_count_total(), 2 * 16);
        let mut nbrs = Vec::new();
        adj.neighbors_into(NodeId::new(0), &mut nbrs);
        assert_eq!(nbrs.len(), 4);
        // Rebuilding the CSR from its own Topology impl is the identity.
        assert_eq!(Adjacency::build(&adj), adj);
    }
}
