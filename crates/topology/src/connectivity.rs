//! Connectivity and acyclicity helpers.
//!
//! The paper's central combinatorial objects — `k`-blocks, non-`k`-blocks
//! (Definitions 4 and 5) and the "forest" hypothesis of Theorems 2, 4
//! and 6 — are all statements about *induced subgraphs*: take the vertices
//! of one colour class and look at the edges of the torus between them.
//! This module provides connected components and forest (acyclicity)
//! detection restricted to an arbitrary vertex subset.

use crate::node::NodeId;
use crate::nodeset::NodeSet;
use crate::topology::Topology;

/// The result of a connected-components computation.
#[derive(Clone, Debug)]
pub struct ComponentLabels {
    /// `labels[v] == usize::MAX` for vertices outside the analysed subset,
    /// otherwise the component index in `0..count`.
    pub labels: Vec<usize>,
    /// Number of components found.
    pub count: usize,
    /// Size of each component.
    pub sizes: Vec<usize>,
}

impl ComponentLabels {
    /// The component index of `v`, or `None` if `v` was outside the subset.
    pub fn component_of(&self, v: NodeId) -> Option<usize> {
        match self.labels.get(v.index()) {
            Some(&l) if l != usize::MAX => Some(l),
            _ => None,
        }
    }

    /// The vertices of component `c`.
    pub fn members(&self, c: usize) -> Vec<NodeId> {
        self.labels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == c)
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }
}

/// Connected components of the subgraph induced by `subset`.
pub fn induced_components<T: Topology + ?Sized>(topology: &T, subset: &NodeSet) -> ComponentLabels {
    let n = topology.node_count();
    let mut labels = vec![usize::MAX; n];
    let mut sizes = Vec::new();
    let mut count = 0;
    let mut stack = Vec::new();

    for start in subset.iter() {
        if labels[start.index()] != usize::MAX {
            continue;
        }
        let mut size = 0usize;
        labels[start.index()] = count;
        stack.push(start);
        while let Some(v) = stack.pop() {
            size += 1;
            topology.for_each_neighbor(v, &mut |u| {
                if subset.contains(u) && labels[u.index()] == usize::MAX {
                    labels[u.index()] = count;
                    stack.push(u);
                }
            });
        }
        sizes.push(size);
        count += 1;
    }

    ComponentLabels {
        labels,
        count,
        sizes,
    }
}

/// Connected components of the whole topology.
pub fn connected_components<T: Topology + ?Sized>(topology: &T) -> ComponentLabels {
    let all = NodeSet::full(topology.node_count());
    induced_components(topology, &all)
}

/// Whether the subgraph induced by `subset` is a forest (contains no
/// cycle).
///
/// This is the hypothesis "`S^{k'}` is a forest" of Theorems 2, 4 and 6.
/// A subgraph with `v` vertices, `e` edges and `c` components is a forest
/// iff `e = v - c`.
pub fn is_forest<T: Topology + ?Sized>(topology: &T, subset: &NodeSet) -> bool {
    let comps = induced_components(topology, subset);
    let vertices = subset.count();
    // Count induced edges once: for each vertex, count neighbours inside
    // the subset with a larger id.
    let mut edges = 0usize;
    for v in subset.iter() {
        topology.for_each_neighbor(v, &mut |u| {
            if u.index() > v.index() && subset.contains(u) {
                edges += 1;
            }
        });
    }
    edges == vertices.saturating_sub(comps.count)
}

/// Whether the subgraph induced by `subset` is connected (and non-empty).
pub fn is_connected_subset<T: Topology + ?Sized>(topology: &T, subset: &NodeSet) -> bool {
    if subset.is_empty() {
        return false;
    }
    induced_components(topology, subset).count == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::torus::{Torus, TorusKind};
    use crate::Coord;

    fn set_of(t: &Torus, coords: &[(usize, usize)]) -> NodeSet {
        NodeSet::from_iter(
            t.node_count(),
            coords.iter().map(|&(r, c)| t.id(Coord::new(r, c))),
        )
    }

    #[test]
    fn whole_torus_is_one_component() {
        for kind in TorusKind::ALL {
            let t = Torus::new(kind, 4, 5);
            let comps = connected_components(&t);
            assert_eq!(comps.count, 1, "{kind} should be connected");
            assert_eq!(comps.sizes, vec![20]);
        }
    }

    #[test]
    fn induced_components_of_two_islands() {
        let t = Torus::new(TorusKind::ToroidalMesh, 6, 6);
        let subset = set_of(&t, &[(0, 0), (0, 1), (3, 3), (3, 4), (4, 3)]);
        let comps = induced_components(&t, &subset);
        assert_eq!(comps.count, 2);
        let mut sizes = comps.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 3]);
        assert_eq!(
            comps.component_of(t.id(Coord::new(0, 0))),
            comps.component_of(t.id(Coord::new(0, 1)))
        );
        assert_ne!(
            comps.component_of(t.id(Coord::new(0, 0))),
            comps.component_of(t.id(Coord::new(3, 3)))
        );
        assert_eq!(comps.component_of(t.id(Coord::new(5, 5))), None);
    }

    #[test]
    fn component_members_are_exact() {
        let t = Torus::new(TorusKind::ToroidalMesh, 4, 4);
        let subset = set_of(&t, &[(1, 1), (1, 2)]);
        let comps = induced_components(&t, &subset);
        let c = comps.component_of(t.id(Coord::new(1, 1))).unwrap();
        let mut members = comps.members(c);
        members.sort_unstable();
        assert_eq!(
            members,
            vec![t.id(Coord::new(1, 1)), t.id(Coord::new(1, 2))]
        );
    }

    #[test]
    fn path_is_forest_cycle_is_not() {
        let t = Torus::new(TorusKind::ToroidalMesh, 5, 5);
        // A straight path of 4 vertices in one row: forest.
        let path = set_of(&t, &[(2, 0), (2, 1), (2, 2), (2, 3)]);
        assert!(is_forest(&t, &path));
        // A whole row on a toroidal mesh wraps around: a cycle, not a forest.
        let row = set_of(&t, &[(2, 0), (2, 1), (2, 2), (2, 3), (2, 4)]);
        assert!(!is_forest(&t, &row));
        // A 2x2 square is a 4-cycle.
        let square = set_of(&t, &[(0, 0), (0, 1), (1, 0), (1, 1)]);
        assert!(!is_forest(&t, &square));
        // Empty set is trivially a forest.
        assert!(is_forest(&t, &NodeSet::new(t.node_count())));
    }

    #[test]
    fn full_row_is_forest_in_cordalis_but_not_in_mesh() {
        // In the torus cordalis a single row is *not* a cycle (its wrap
        // edge goes to the next row), so a full row induces a path.
        let mesh = Torus::new(TorusKind::ToroidalMesh, 5, 5);
        let cord = Torus::new(TorusKind::TorusCordalis, 5, 5);
        let row_coords: Vec<(usize, usize)> = (0..5).map(|j| (2, j)).collect();
        assert!(!is_forest(&mesh, &set_of(&mesh, &row_coords)));
        assert!(is_forest(&cord, &set_of(&cord, &row_coords)));
    }

    #[test]
    fn connectedness_of_subsets() {
        let t = Torus::new(TorusKind::ToroidalMesh, 4, 4);
        assert!(is_connected_subset(&t, &set_of(&t, &[(0, 0), (0, 1)])));
        assert!(!is_connected_subset(&t, &set_of(&t, &[(0, 0), (2, 2)])));
        assert!(!is_connected_subset(&t, &NodeSet::new(t.node_count())));
    }
}
