//! Bounding rectangles of vertex sets (the `R_F` of the paper).
//!
//! Lemma 1 and Theorem 1 reason about "the smallest rectangle containing
//! `F`", written `R_F`, of size `m_F × n_F`.  On a torus the rows occupied
//! by `F` live on the cycle `Z_m` and the columns on `Z_n`, so the smallest
//! enclosing rectangle is determined by the *largest empty cyclic gap* in
//! each dimension: `m_F = m - (largest run of consecutive unoccupied
//! rows)`, and symmetrically for columns.

use crate::coord::Coord;
use crate::node::NodeId;
use crate::nodeset::NodeSet;
use crate::topology::Topology;
use crate::torus::Torus;

/// The smallest (cyclic) bounding rectangle of a vertex set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rectangle {
    /// First row of the rectangle (inclusive, may wrap).
    pub row_start: usize,
    /// Number of rows spanned (`m_F`).
    pub row_extent: usize,
    /// First column of the rectangle (inclusive, may wrap).
    pub col_start: usize,
    /// Number of columns spanned (`n_F`).
    pub col_extent: usize,
}

impl Rectangle {
    /// `m_F`, the number of rows spanned.
    pub fn m_f(&self) -> usize {
        self.row_extent
    }

    /// `n_F`, the number of columns spanned.
    pub fn n_f(&self) -> usize {
        self.col_extent
    }

    /// Area of the rectangle.
    pub fn area(&self) -> usize {
        self.row_extent * self.col_extent
    }

    /// Whether the rectangle contains the given coordinate on an `m × n`
    /// torus (taking wrap-around into account).
    pub fn contains(&self, c: Coord, m: usize, n: usize) -> bool {
        let row_off = (c.row + m - self.row_start) % m;
        let col_off = (c.col + n - self.col_start) % n;
        row_off < self.row_extent && col_off < self.col_extent
    }
}

/// Computes the minimal extent and starting index covering the marked
/// positions on a cycle of length `len`.
///
/// Returns `(start, extent)`.  If nothing is marked, the extent is 0.
fn minimal_cyclic_cover(marked: &[bool]) -> (usize, usize) {
    let len = marked.len();
    let occupied: Vec<usize> = (0..len).filter(|&i| marked[i]).collect();
    if occupied.is_empty() {
        return (0, 0);
    }
    if occupied.len() == len {
        return (0, len);
    }
    // Find the largest cyclic gap of unoccupied positions between two
    // consecutive occupied positions; the cover is everything else.
    let mut best_gap = 0usize;
    let mut best_start_after_gap = occupied[0];
    for (idx, &pos) in occupied.iter().enumerate() {
        let next = occupied[(idx + 1) % occupied.len()];
        // Cyclic step from `pos` to `next`; a single occupied position wraps
        // all the way around (step of `len`).
        let gap = ((next + len - pos - 1) % len) + 1;
        // gap counts the step from pos to next; unoccupied cells between
        // them are gap - 1.
        if gap > best_gap {
            best_gap = gap;
            best_start_after_gap = next;
        }
    }
    let extent = len - (best_gap - 1);
    (best_start_after_gap, extent)
}

/// The smallest rectangle `R_F` containing the vertex set `F` on the given
/// torus, in the cyclic sense described in the module documentation.
pub fn bounding_rectangle(torus: &Torus, f: &NodeSet) -> Rectangle {
    let m = torus.rows();
    let n = torus.cols();
    let mut rows = vec![false; m];
    let mut cols = vec![false; n];
    for v in f.iter() {
        let c = torus.coord(v);
        rows[c.row] = true;
        cols[c.col] = true;
    }
    let (row_start, row_extent) = minimal_cyclic_cover(&rows);
    let (col_start, col_extent) = minimal_cyclic_cover(&cols);
    Rectangle {
        row_start,
        row_extent,
        col_start,
        col_extent,
    }
}

/// Convenience: bounding rectangle of an explicit list of coordinates.
pub fn bounding_rectangle_of_coords(torus: &Torus, coords: &[Coord]) -> Rectangle {
    let set = NodeSet::from_iter(torus.node_count(), coords.iter().map(|&c| torus.id(c)));
    bounding_rectangle(torus, &set)
}

/// Convenience: bounding rectangle of an explicit list of node ids.
pub fn bounding_rectangle_of_ids(torus: &Torus, ids: &[NodeId]) -> Rectangle {
    let set = NodeSet::from_iter(torus.node_count(), ids.iter().copied());
    bounding_rectangle(torus, &set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::torus::TorusKind;

    fn torus() -> Torus {
        Torus::new(TorusKind::ToroidalMesh, 6, 8)
    }

    fn rect_of(t: &Torus, coords: &[(usize, usize)]) -> Rectangle {
        let cs: Vec<Coord> = coords.iter().map(|&(r, c)| Coord::new(r, c)).collect();
        bounding_rectangle_of_coords(t, &cs)
    }

    #[test]
    fn empty_set_has_zero_extent() {
        let t = torus();
        let r = bounding_rectangle(&t, &NodeSet::new(t.node_count()));
        assert_eq!(r.m_f(), 0);
        assert_eq!(r.n_f(), 0);
        assert_eq!(r.area(), 0);
    }

    #[test]
    fn single_vertex() {
        let t = torus();
        let r = rect_of(&t, &[(2, 3)]);
        assert_eq!((r.m_f(), r.n_f()), (1, 1));
        assert_eq!((r.row_start, r.col_start), (2, 3));
        assert!(r.contains(Coord::new(2, 3), 6, 8));
        assert!(!r.contains(Coord::new(2, 4), 6, 8));
    }

    #[test]
    fn axis_aligned_block() {
        let t = torus();
        let r = rect_of(&t, &[(1, 1), (1, 4), (3, 2)]);
        assert_eq!((r.m_f(), r.n_f()), (3, 4));
        assert_eq!((r.row_start, r.col_start), (1, 1));
    }

    #[test]
    fn wrapping_cover_is_detected() {
        let t = torus();
        // Rows 5 and 0 are adjacent on the cycle; the minimal cover spans 2
        // rows starting at row 5, not 6 rows starting at row 0.
        let r = rect_of(&t, &[(5, 0), (0, 0)]);
        assert_eq!(r.m_f(), 2);
        assert_eq!(r.row_start, 5);
        // Columns 7 and 0 similarly.
        let r = rect_of(&t, &[(2, 7), (2, 0)]);
        assert_eq!(r.n_f(), 2);
        assert_eq!(r.col_start, 7);
    }

    #[test]
    fn full_row_spans_all_columns() {
        let t = torus();
        let coords: Vec<(usize, usize)> = (0..8).map(|j| (3, j)).collect();
        let r = rect_of(&t, &coords);
        assert_eq!(r.m_f(), 1);
        assert_eq!(r.n_f(), 8);
    }

    #[test]
    fn theorem1_style_row_plus_column() {
        // The Sk of Theorem 2: column 0 plus row 0 minus one vertex spans
        // the whole torus minus nothing in terms of rectangle: m_F = m,
        // n_F = n - it covers every row and every column except none.
        let t = torus();
        let mut coords: Vec<(usize, usize)> = (0..6).map(|i| (i, 0)).collect();
        coords.extend((0..7).map(|j| (0, j)));
        let r = rect_of(&t, &coords);
        assert_eq!(r.m_f(), 6);
        assert_eq!(r.n_f(), 7);
    }

    #[test]
    fn contains_handles_wrapping_rectangles() {
        let r = Rectangle {
            row_start: 4,
            row_extent: 3,
            col_start: 6,
            col_extent: 3,
        };
        // rows 4,5,0 and cols 6,7,0 on a 6x8 torus
        assert!(r.contains(Coord::new(5, 7), 6, 8));
        assert!(r.contains(Coord::new(0, 0), 6, 8));
        assert!(!r.contains(Coord::new(1, 1), 6, 8));
        assert!(!r.contains(Coord::new(3, 6), 6, 8));
    }

    #[test]
    fn scattered_set_prefers_largest_gap() {
        let t = Torus::new(TorusKind::ToroidalMesh, 10, 10);
        // occupied rows 0, 1, 7 -> gaps: 1->7 is 5 empty rows (2..6),
        // 7->0 is 2 empty rows (8, 9). Largest gap 2..6, cover starts at 7,
        // extent 10 - 5 = 5 (rows 7,8,9,0,1... wait cover excludes the gap:
        // rows 7,8,9,0,1 -> 5 rows).
        let r = rect_of(&t, &[(0, 0), (1, 0), (7, 0)]);
        assert_eq!(r.m_f(), 5);
        assert_eq!(r.row_start, 7);
    }
}
