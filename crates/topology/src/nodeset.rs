//! A compact bit set over the vertices of a topology.
//!
//! Sets of vertices appear everywhere in the paper — the initial set `S^k`,
//! blocks, non-blocks, sets derivable from `F` — and the exhaustive searches
//! in `ctori-core` iterate over very many of them, so the representation is
//! a plain `Vec<u64>` bit set rather than a hash set.

use crate::node::NodeId;

/// A set of vertices of a topology with `len` vertices, stored as a bit set.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct NodeSet {
    words: Vec<u64>,
    len: usize,
}

impl NodeSet {
    /// Creates an empty set over a universe of `len` vertices.
    pub fn new(len: usize) -> Self {
        NodeSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a set containing every vertex of the universe.
    pub fn full(len: usize) -> Self {
        let mut s = NodeSet::new(len);
        for i in 0..len {
            s.insert(NodeId::new(i));
        }
        s
    }

    /// Creates a set from an iterator of vertices.
    pub fn from_iter<I: IntoIterator<Item = NodeId>>(len: usize, iter: I) -> Self {
        let mut s = NodeSet::new(len);
        for v in iter {
            s.insert(v);
        }
        s
    }

    /// Size of the universe this set ranges over.
    #[inline]
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Inserts a vertex; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, v: NodeId) -> bool {
        let i = v.index();
        debug_assert!(i < self.len, "vertex out of universe");
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let was = *word & mask != 0;
        *word |= mask;
        !was
    }

    /// Removes a vertex; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, v: NodeId) -> bool {
        let i = v.index();
        debug_assert!(i < self.len, "vertex out of universe");
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let was = *word & mask != 0;
        *word &= !mask;
        was
    }

    /// Whether the set contains `v`.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        let i = v.index();
        if i >= self.len {
            return false;
        }
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of vertices in the set.
    #[inline]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all vertices.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Iterates over the vertices in the set in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(NodeId::new(wi * 64 + b))
                }
            })
        })
    }

    /// Whether `self` is a subset of `other` (universes must match).
    pub fn is_subset_of(&self, other: &NodeSet) -> bool {
        debug_assert_eq!(self.len, other.len, "universe mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.len, other.len, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.len, other.len, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.len, other.len, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// The complement of this set within its universe.
    pub fn complement(&self) -> NodeSet {
        let mut out = NodeSet::new(self.len);
        for i in 0..self.len {
            let v = NodeId::new(i);
            if !self.contains(v) {
                out.insert(v);
            }
        }
        out
    }
}

impl FromIterator<NodeId> for NodeSet {
    /// Builds a set whose universe is just large enough for the largest
    /// vertex seen.  Prefer [`NodeSet::from_iter`] (the inherent method)
    /// when the universe size is known.
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let items: Vec<NodeId> = iter.into_iter().collect();
        let len = items.iter().map(|v| v.index() + 1).max().unwrap_or(0);
        NodeSet::from_iter(len, items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[usize]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId::new).collect()
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = NodeSet::new(100);
        assert!(s.is_empty());
        assert!(s.insert(NodeId::new(7)));
        assert!(!s.insert(NodeId::new(7)));
        assert!(s.contains(NodeId::new(7)));
        assert!(!s.contains(NodeId::new(8)));
        assert_eq!(s.count(), 1);
        assert!(s.remove(NodeId::new(7)));
        assert!(!s.remove(NodeId::new(7)));
        assert!(s.is_empty());
    }

    #[test]
    fn iter_in_order() {
        let mut s = NodeSet::new(200);
        for &i in &[5usize, 190, 63, 64, 65, 0] {
            s.insert(NodeId::new(i));
        }
        let got: Vec<usize> = s.iter().map(|v| v.index()).collect();
        assert_eq!(got, vec![0, 5, 63, 64, 65, 190]);
    }

    #[test]
    fn set_algebra() {
        let a = NodeSet::from_iter(50, ids(&[1, 2, 3, 10]));
        let b = NodeSet::from_iter(50, ids(&[3, 10, 20]));

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 5);

        let mut i = a.clone();
        i.intersect_with(&b);
        let got: Vec<usize> = i.iter().map(|v| v.index()).collect();
        assert_eq!(got, vec![3, 10]);

        let mut d = a.clone();
        d.difference_with(&b);
        let got: Vec<usize> = d.iter().map(|v| v.index()).collect();
        assert_eq!(got, vec![1, 2]);

        assert!(i.is_subset_of(&a));
        assert!(i.is_subset_of(&b));
        assert!(!a.is_subset_of(&b));
    }

    #[test]
    fn complement_and_full() {
        let a = NodeSet::from_iter(10, ids(&[0, 9, 4]));
        let c = a.complement();
        assert_eq!(c.count(), 7);
        for i in 0..10 {
            assert_ne!(a.contains(NodeId::new(i)), c.contains(NodeId::new(i)));
        }
        assert_eq!(NodeSet::full(10).count(), 10);
        let mut f = NodeSet::full(10);
        f.clear();
        assert!(f.is_empty());
    }

    #[test]
    fn from_iterator_trait_sizes_universe() {
        let s: NodeSet = ids(&[3, 7]).into_iter().collect();
        assert_eq!(s.universe(), 8);
        assert!(s.contains(NodeId::new(7)));
        assert!(!s.contains(NodeId::new(100)));
    }

    #[test]
    fn word_boundary_behaviour() {
        let mut s = NodeSet::new(129);
        s.insert(NodeId::new(63));
        s.insert(NodeId::new(64));
        s.insert(NodeId::new(127));
        s.insert(NodeId::new(128));
        assert_eq!(s.count(), 4);
        let got: Vec<usize> = s.iter().map(|v| v.index()).collect();
        assert_eq!(got, vec![63, 64, 127, 128]);
    }
}
