//! Grid coordinates.
//!
//! A vertex of an `m × n` torus is addressed by its row `i` (`0 ≤ i < m`)
//! and column `j` (`0 ≤ j < n`), matching the `v[i][j]` notation of the
//! paper.  [`Coord`] also provides the cyclic displacement helpers used by
//! the bounding-rectangle computation of Lemma 1.

/// A `(row, col)` coordinate on an `m × n` grid.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Coord {
    /// Row index `i`, `0 ≤ i < m`.
    pub row: usize,
    /// Column index `j`, `0 ≤ j < n`.
    pub col: usize,
}

impl Coord {
    /// Creates a coordinate from a row and a column index.
    #[inline]
    pub const fn new(row: usize, col: usize) -> Self {
        Coord { row, col }
    }

    /// Row-major linear index of this coordinate on an `m × n` grid.
    #[inline]
    pub fn to_index(self, n: usize) -> usize {
        self.row * n + self.col
    }

    /// Inverse of [`Coord::to_index`].
    #[inline]
    pub fn from_index(index: usize, n: usize) -> Self {
        Coord {
            row: index / n,
            col: index % n,
        }
    }

    /// The coordinate one row up (toward row 0), wrapping around modulo `m`.
    #[inline]
    pub fn up(self, m: usize) -> Self {
        Coord::new((self.row + m - 1) % m, self.col)
    }

    /// The coordinate one row down, wrapping around modulo `m`.
    #[inline]
    pub fn down(self, m: usize) -> Self {
        Coord::new((self.row + 1) % m, self.col)
    }

    /// The coordinate one column to the left, wrapping around modulo `n`.
    #[inline]
    pub fn left(self, n: usize) -> Self {
        Coord::new(self.row, (self.col + n - 1) % n)
    }

    /// The coordinate one column to the right, wrapping around modulo `n`.
    #[inline]
    pub fn right(self, n: usize) -> Self {
        Coord::new(self.row, (self.col + 1) % n)
    }

    /// Cyclic distance between two row indices on a cycle of length `m`.
    #[inline]
    pub fn cyclic_row_distance(a: usize, b: usize, m: usize) -> usize {
        let d = a.abs_diff(b) % m;
        d.min(m - d)
    }

    /// Cyclic distance between two column indices on a cycle of length `n`.
    #[inline]
    pub fn cyclic_col_distance(a: usize, b: usize, n: usize) -> usize {
        Self::cyclic_row_distance(a, b, n)
    }

    /// Toroidal (wrap-around Manhattan) distance between two coordinates on
    /// an `m × n` toroidal mesh.
    #[inline]
    pub fn toroidal_distance(self, other: Coord, m: usize, n: usize) -> usize {
        Self::cyclic_row_distance(self.row, other.row, m)
            + Self::cyclic_col_distance(self.col, other.col, n)
    }
}

impl From<(usize, usize)> for Coord {
    #[inline]
    fn from((row, col): (usize, usize)) -> Self {
        Coord::new(row, col)
    }
}

impl std::fmt::Display for Coord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.row, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let n = 7;
        for row in 0..5 {
            for col in 0..n {
                let c = Coord::new(row, col);
                assert_eq!(Coord::from_index(c.to_index(n), n), c);
            }
        }
    }

    #[test]
    fn neighbours_wrap_around() {
        let m = 4;
        let n = 5;
        assert_eq!(Coord::new(0, 0).up(m), Coord::new(3, 0));
        assert_eq!(Coord::new(3, 0).down(m), Coord::new(0, 0));
        assert_eq!(Coord::new(0, 0).left(n), Coord::new(0, 4));
        assert_eq!(Coord::new(0, 4).right(n), Coord::new(0, 0));
    }

    #[test]
    fn interior_moves_do_not_wrap() {
        let m = 4;
        let n = 5;
        let c = Coord::new(2, 2);
        assert_eq!(c.up(m), Coord::new(1, 2));
        assert_eq!(c.down(m), Coord::new(3, 2));
        assert_eq!(c.left(n), Coord::new(2, 1));
        assert_eq!(c.right(n), Coord::new(2, 3));
    }

    #[test]
    fn cyclic_distance_is_symmetric_and_short() {
        assert_eq!(Coord::cyclic_row_distance(0, 4, 5), 1);
        assert_eq!(Coord::cyclic_row_distance(4, 0, 5), 1);
        assert_eq!(Coord::cyclic_row_distance(1, 3, 8), 2);
        assert_eq!(Coord::cyclic_row_distance(0, 0, 8), 0);
        assert_eq!(Coord::cyclic_row_distance(0, 4, 8), 4);
    }

    #[test]
    fn toroidal_distance_examples() {
        let m = 6;
        let n = 6;
        assert_eq!(
            Coord::new(0, 0).toroidal_distance(Coord::new(5, 5), m, n),
            2
        );
        assert_eq!(
            Coord::new(2, 2).toroidal_distance(Coord::new(2, 2), m, n),
            0
        );
        assert_eq!(
            Coord::new(0, 0).toroidal_distance(Coord::new(3, 3), m, n),
            6
        );
    }

    #[test]
    fn from_tuple() {
        let c: Coord = (3, 4).into();
        assert_eq!(c, Coord::new(3, 4));
        assert_eq!(c.to_string(), "(3, 4)");
    }
}
