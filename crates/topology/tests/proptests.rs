//! Property-based tests for the torus topologies.
//!
//! These check the structural invariants the rest of the workspace relies
//! on: 4-regularity, symmetry of the adjacency relation, inverse moves and
//! consistency of the bounding-rectangle computation.

use ctori_topology::{bounding_rectangle, Coord, NodeId, NodeSet, Topology, Torus, TorusKind};
use proptest::prelude::*;

fn torus_kind() -> impl Strategy<Value = TorusKind> {
    prop_oneof![
        Just(TorusKind::ToroidalMesh),
        Just(TorusKind::TorusCordalis),
        Just(TorusKind::TorusSerpentinus),
    ]
}

fn small_torus() -> impl Strategy<Value = Torus> {
    (torus_kind(), 2usize..=12, 2usize..=12).prop_map(|(k, m, n)| Torus::new(k, m, n))
}

proptest! {
    #[test]
    fn every_vertex_has_four_neighbors(t in small_torus()) {
        for v in 0..t.node_count() {
            let nbrs = t.neighbor_ids(NodeId::new(v));
            prop_assert_eq!(nbrs.len(), 4);
            for u in nbrs {
                prop_assert!(u.index() < t.node_count());
            }
        }
    }

    #[test]
    fn adjacency_is_symmetric(t in small_torus()) {
        for v in 0..t.node_count() {
            let v = NodeId::new(v);
            for u in t.neighbor_ids(v) {
                prop_assert!(t.neighbor_ids(u).contains(&v),
                    "asymmetric edge {} - {} on {}", v, u, t);
            }
        }
    }

    #[test]
    fn degree_sum_counts_edges(t in small_torus()) {
        // 4-regular graph: 2 * |E| = 4 * |V|.
        prop_assert_eq!(t.edge_count_total(), 2 * t.node_count());
    }

    #[test]
    fn directional_moves_are_inverses(t in small_torus()) {
        for c in t.coords().collect::<Vec<_>>() {
            prop_assert_eq!(t.south(t.north(c)), c);
            prop_assert_eq!(t.north(t.south(c)), c);
            prop_assert_eq!(t.east(t.west(c)), c);
            prop_assert_eq!(t.west(t.east(c)), c);
        }
    }

    #[test]
    fn id_coord_roundtrip(t in small_torus()) {
        for c in t.coords().collect::<Vec<_>>() {
            prop_assert_eq!(t.coord(t.id(c)), c);
        }
    }

    #[test]
    fn bounding_rectangle_contains_its_set(
        t in small_torus(),
        picks in prop::collection::vec((0usize..144, 0usize..144), 1..20),
    ) {
        let coords: Vec<Coord> = picks
            .into_iter()
            .map(|(a, b)| Coord::new(a % t.rows(), b % t.cols()))
            .collect();
        let set = NodeSet::from_iter(t.node_count(), coords.iter().map(|&c| t.id(c)));
        let rect = bounding_rectangle(&t, &set);
        for &c in &coords {
            prop_assert!(rect.contains(c, t.rows(), t.cols()),
                "rectangle {:?} does not contain {}", rect, c);
        }
        prop_assert!(rect.m_f() <= t.rows());
        prop_assert!(rect.n_f() <= t.cols());
        prop_assert!(rect.m_f() >= 1);
        prop_assert!(rect.n_f() >= 1);
    }

    #[test]
    fn graph_conversion_preserves_adjacency(t in small_torus()) {
        let g = t.to_graph();
        prop_assert_eq!(g.node_count(), t.node_count());
        if t.rows() > 2 && t.cols() > 2 {
            // With both dimensions above 2 the four neighbours are distinct
            // vertices, so the simple graph has exactly 2·|V| edges.
            prop_assert_eq!(g.edge_count(), 2 * t.node_count());
        }
        for v in 0..t.node_count() {
            let v = NodeId::new(v);
            // On 2-wide tori a vertex's neighbour list contains repeated
            // vertices (north == south or west == east); the simple-graph
            // conversion collapses them, so compare the deduplicated sets.
            let mut a = t.neighbor_ids(v).to_vec();
            a.sort_unstable();
            a.dedup();
            let mut b = g.neighbors_slice(v).to_vec();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }
}
