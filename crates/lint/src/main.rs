//! The `ctori-lint` binary: `cargo run -p ctori-lint -- --check`.
//!
//! Finds the workspace root (the directory holding `lint.toml`,
//! searched upward from the current directory), runs every rule, writes
//! `LINT.json` and prints human diagnostics with `file:line` anchors.
//! Exit status: `0` clean, `1` unsuppressed findings, `2` usage or I/O
//! error.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut check = false;
    let mut root: Option<PathBuf> = None;
    let mut config: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--root" => root = args.next().map(PathBuf::from),
            "--config" => config = args.next().map(PathBuf::from),
            "--out" => out = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ctori-lint: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if !check {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let root = match root.or_else(find_root) {
        Some(root) => root,
        None => {
            eprintln!("ctori-lint: no lint.toml found upward from the current directory");
            return ExitCode::from(2);
        }
    };
    let config = config.unwrap_or_else(|| root.join("lint.toml"));
    let cfg_text = match std::fs::read_to_string(&config) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("ctori-lint: cannot read {}: {err}", config.display());
            return ExitCode::from(2);
        }
    };
    let report = match ctori_lint::check(&root, &cfg_text) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("ctori-lint: bad configuration: {err}");
            return ExitCode::from(2);
        }
    };

    let out = out.unwrap_or_else(|| root.join("LINT.json"));
    if let Err(err) = std::fs::write(&out, report.to_json()) {
        eprintln!("ctori-lint: cannot write {}: {err}", out.display());
        return ExitCode::from(2);
    }

    let mut fatal = 0usize;
    let mut allowed = 0usize;
    for finding in &report.findings {
        match &finding.suppressed {
            Some(reason) => {
                allowed += 1;
                println!(
                    "allowed {}:{}: [{}] {} ({reason})",
                    finding.file, finding.line, finding.rule, finding.message
                );
            }
            None => {
                fatal += 1;
                println!(
                    "error {}:{}: [{}] {}",
                    finding.file, finding.line, finding.rule, finding.message
                );
            }
        }
    }
    println!(
        "ctori-lint: {} files checked, {} findings ({} unsuppressed, {} allowed) -> {}",
        report.checked_files,
        report.findings.len(),
        fatal,
        allowed,
        out.display()
    );
    if fatal > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

const USAGE: &str = "usage: ctori-lint --check [--root DIR] [--config FILE] [--out FILE]";

/// The nearest ancestor directory (including the current one) holding a
/// `lint.toml`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
