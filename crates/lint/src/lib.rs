//! `ctori-lint` — the workspace invariant checker.
//!
//! The simulator's correctness claims rest on invariants no compiler
//! checks: the nested pool-state → event-log lock order in the
//! executor, the panic-free service paths, the fields excluded from
//! `RunSpec::canonical_key` cache identity, the wire tokens spelled
//! identically across protocol / client / remote / README, and the
//! `#![deny(unsafe_code)]` + CI gate hygiene.  This crate walks the
//! workspace source with a small in-repo lexer (no `syn`, no network
//! dependencies) and enforces all five as machine-checked rules:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `lock-order` | every `.lock()` acquisition respects the declared partial order; no re-entry |
//! | `panic-path` | no `unwrap`/`expect`/`panic!`/`todo!` on non-test service or executor paths |
//! | `spec-key-drift` | spec fields, `canonical_key` normalisation and `RunOutcome` equality stay in sync with the declared exclusions |
//! | `wire-tokens` | protocol verbs and error codes agree across `protocol.rs`, `client.rs`, `remote.rs` and the README |
//! | `hygiene` | every non-vendor `lib.rs` keeps its safety header; CI keeps the clippy + lint gates |
//!
//! Configuration lives in the workspace-root `lint.toml`; run with
//! `cargo run -p ctori-lint -- --check`.  The binary writes a
//! machine-readable `LINT.json` and exits nonzero on any unsuppressed
//! finding.  See `crates/lint/README.md` for how to add a rule and how
//! `// lint: allow(<rule>) <reason>` suppressions work.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;

use report::{Report, Workspace};
use std::path::Path;

/// Runs every rule against the workspace at `root` using `cfg_text`
/// (the contents of a `lint.toml`).
pub fn check(root: &Path, cfg_text: &str) -> Result<Report, String> {
    let cfg = config::LintConfig::from_toml(cfg_text)?;
    Ok(rules::run_all(&Workspace::new(root), &cfg))
}
