//! `lint.toml` parsing — a tiny TOML subset, std-only.
//!
//! Supported syntax: `[section]` headers, `[[section]]` array-of-tables
//! headers, `key = value` pairs with string, string-array (possibly
//! multi-line), boolean and integer values, and `#` comments.  That is
//! exactly what `lint.toml` uses; anything else is a parse error so a
//! config typo cannot silently disable a rule.

use std::collections::BTreeMap;

/// A parsed configuration value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An array of quoted strings.
    List(Vec<String>),
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    Int(u64),
}

/// One table of `key = value` pairs.
#[derive(Clone, Debug, Default)]
pub struct Table {
    map: BTreeMap<String, Value>,
}

impl Table {
    /// The string value of `key`, if present and a string.
    pub fn str(&self, key: &str) -> Option<&str> {
        match self.map.get(key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// The string-array value of `key` (empty when absent).
    pub fn list(&self, key: &str) -> Vec<String> {
        match self.map.get(key) {
            Some(Value::List(v)) => v.clone(),
            Some(Value::Str(s)) => vec![s.clone()],
            _ => Vec::new(),
        }
    }
}

/// The raw parsed document: section path → tables (one per `[x]`, many
/// per `[[x]]`).
#[derive(Debug, Default)]
pub struct Document {
    sections: BTreeMap<String, Vec<Table>>,
}

impl Document {
    /// Parses the subset; returns a human-readable error on anything
    /// outside it.
    pub fn parse(text: &str) -> Result<Document, String> {
        let mut doc = Document::default();
        let mut current = String::new();
        doc.sections.insert(String::new(), vec![Table::default()]);
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
                current = name.trim().to_string();
                doc.sections
                    .entry(current.clone())
                    .or_default()
                    .push(Table::default());
            } else if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
                current = name.trim().to_string();
                let tables = doc.sections.entry(current.clone()).or_default();
                if tables.is_empty() {
                    tables.push(Table::default());
                }
            } else if let Some((key, mut rest)) = split_key(&line) {
                // A `[` array may span lines: accumulate until balanced.
                while array_open(&rest) {
                    match lines.next() {
                        Some((_, cont)) => {
                            rest.push(' ');
                            rest.push_str(strip_comment(cont).trim());
                        }
                        None => return Err(format!("line {}: unterminated array", idx + 1)),
                    }
                }
                let value =
                    parse_value(rest.trim()).map_err(|e| format!("line {}: {e}", idx + 1))?;
                let tables = doc.sections.entry(current.clone()).or_default();
                if tables.is_empty() {
                    tables.push(Table::default());
                }
                if let Some(table) = tables.last_mut() {
                    table.map.insert(key, value);
                }
            } else {
                return Err(format!("line {}: unsupported syntax: {line}", idx + 1));
            }
        }
        Ok(doc)
    }

    /// The single table of `[name]` (the last one if repeated).
    pub fn section(&self, name: &str) -> Option<&Table> {
        self.sections.get(name).and_then(|v| v.last())
    }

    /// Every table of `[[name]]`.
    pub fn tables(&self, name: &str) -> &[Table] {
        self.sections.get(name).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn split_key(line: &str) -> Option<(String, String)> {
    let eq = line.find('=')?;
    let key = line[..eq].trim();
    if key.is_empty()
        || !key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return None;
    }
    Some((key.to_string(), line[eq + 1..].trim().to_string()))
}

/// Whether `rest` opens a `[` array that is not yet closed.
fn array_open(rest: &str) -> bool {
    let mut in_str = false;
    let mut escaped = false;
    let mut depth = 0i32;
    let mut opened = false;
    for c in rest.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => {
                depth += 1;
                opened = true;
            }
            ']' if !in_str => depth -= 1,
            _ => {}
        }
        escaped = false;
    }
    opened && depth > 0
}

fn parse_value(text: &str) -> Result<Value, String> {
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Ok(n) = text.parse::<u64>() {
        return Ok(Value::Int(n));
    }
    if text.starts_with('"') {
        return Ok(Value::Str(parse_str(text)?.0));
    }
    if let Some(inner) = text.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
        let mut items = Vec::new();
        let mut rest = inner.trim();
        while !rest.is_empty() {
            let (item, remainder) = parse_str(rest)?;
            items.push(item);
            rest = remainder
                .trim()
                .strip_prefix(',')
                .unwrap_or(remainder.trim())
                .trim();
        }
        return Ok(Value::List(items));
    }
    Err(format!("unsupported value: {text}"))
}

/// Parses one leading quoted string; returns it and the remaining text.
fn parse_str(text: &str) -> Result<(String, &str), String> {
    let rest = text
        .strip_prefix('"')
        .ok_or_else(|| format!("expected a quoted string at: {text}"))?;
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some((_, esc)) => out.push(esc),
                None => return Err("dangling escape".into()),
            },
            '"' => return Ok((out, &rest[i + 1..])),
            _ => out.push(c),
        }
    }
    Err(format!("unterminated string: {text}"))
}

/// A lock class: a name plus the receiver suffixes, helper methods and
/// free functions that acquire it.
#[derive(Clone, Debug)]
pub struct LockClass {
    /// Class name as used in `order`.
    pub name: String,
    /// Final dotted-path segments that identify a `.lock()` receiver
    /// (e.g. `state` for `self.shared.state.lock()`).
    pub receivers: Vec<String>,
    /// `Type::method` entries: a `self.method()` call inside an `impl`
    /// block of `Type` acquires this class.
    pub helpers: Vec<String>,
    /// Free functions whose *call* transiently acquires this class
    /// (checked against held guards, released on return).
    pub functions: Vec<String>,
}

/// Configuration of the lock-order rule.
#[derive(Clone, Debug)]
pub struct LockOrderCfg {
    /// Files whose `.lock()` sites are checked.
    pub files: Vec<String>,
    /// Declared partial order: a class may only be acquired while
    /// classes *earlier* in this list are held.
    pub order: Vec<String>,
    /// The declared lock classes.
    pub classes: Vec<LockClass>,
}

/// Configuration of the panic-path rule.
#[derive(Clone, Debug)]
pub struct PanicCfg {
    /// Files / directories whose non-test code must be panic-free.
    pub include: Vec<String>,
    /// `.expect()` messages containing one of these substrings are
    /// blanket-allowed (the documented Mutex-poisoning idiom).
    pub allow_expect_containing: Vec<String>,
}

/// Configuration of the spec-key-drift rule.
#[derive(Clone, Debug)]
pub struct SpecKeyCfg {
    /// File defining `RunSpec` / `EngineOptions`.
    pub spec_file: String,
    /// File defining `RunOutcome` and its manual `PartialEq`.
    pub outcome_file: String,
    /// `EngineOptions` fields declared outcome-irrelevant: they must be
    /// normalised away in `canonical_key` — and nothing else may be.
    pub options_exclude: Vec<String>,
    /// `RunOutcome` fields declared excluded from equality: they must
    /// not appear in `eq`, but must still be serialised by `to_text`.
    pub outcome_exclude: Vec<String>,
}

/// Configuration of the wire-token rule.
#[derive(Clone, Debug)]
pub struct WireCfg {
    /// The protocol definition file (source of truth).
    pub protocol: String,
    /// Files whose wire-looking string literals must match the protocol.
    pub check: Vec<String>,
    /// The README whose protocol table must list every verb.
    pub readme: String,
    /// The declared request verbs.
    pub verbs: Vec<String>,
    /// The declared error codes.
    pub error_codes: Vec<String>,
    /// Additional hyphenated literals that are legitimately not error
    /// codes (wire keys etc.).
    pub allow_tokens: Vec<String>,
}

/// Configuration of the hygiene rule.
#[derive(Clone, Debug)]
pub struct HygieneCfg {
    /// Attributes every non-vendor `lib.rs` must carry.
    pub require_attrs: Vec<String>,
    /// Path prefixes of crates exempt from the attribute check.
    pub exclude: Vec<String>,
    /// The CI workflow file.
    pub ci_file: String,
    /// Substrings the CI workflow must contain (the clippy and lint
    /// gates).
    pub ci_must_contain: Vec<String>,
}

/// The fully-validated lint configuration.
#[derive(Clone, Debug)]
pub struct LintConfig {
    /// Lock-order rule settings.
    pub lock: LockOrderCfg,
    /// Panic-path rule settings.
    pub panic: PanicCfg,
    /// Spec-key-drift rule settings.
    pub speckey: SpecKeyCfg,
    /// Wire-token rule settings.
    pub wire: WireCfg,
    /// Hygiene rule settings.
    pub hygiene: HygieneCfg,
}

impl LintConfig {
    /// Parses and validates a `lint.toml` document.
    pub fn from_toml(text: &str) -> Result<LintConfig, String> {
        let doc = Document::parse(text)?;
        let lock_table = doc.section("lock-order").ok_or("missing [lock-order]")?;
        let order = lock_table.list("order");
        let classes: Vec<LockClass> = doc
            .tables("lock-order.class")
            .iter()
            .map(|t| {
                Ok(LockClass {
                    name: t
                        .str("name")
                        .ok_or("lock class without a name")?
                        .to_string(),
                    receivers: t.list("receivers"),
                    helpers: t.list("helpers"),
                    functions: t.list("functions"),
                })
            })
            .collect::<Result<_, String>>()?;
        for name in &order {
            if !classes.iter().any(|c| &c.name == name) {
                return Err(format!("order references undeclared lock class `{name}`"));
            }
        }
        let panic_table = doc.section("panic-path").ok_or("missing [panic-path]")?;
        let speckey = doc.section("spec-key").ok_or("missing [spec-key]")?;
        let wire = doc.section("wire-tokens").ok_or("missing [wire-tokens]")?;
        let hygiene = doc.section("hygiene").ok_or("missing [hygiene]")?;
        Ok(LintConfig {
            lock: LockOrderCfg {
                files: lock_table.list("files"),
                order,
                classes,
            },
            panic: PanicCfg {
                include: panic_table.list("include"),
                allow_expect_containing: panic_table.list("allow-expect-containing"),
            },
            speckey: SpecKeyCfg {
                spec_file: speckey
                    .str("spec-file")
                    .ok_or("spec-key.spec-file")?
                    .to_string(),
                outcome_file: speckey
                    .str("outcome-file")
                    .ok_or("spec-key.outcome-file")?
                    .to_string(),
                options_exclude: speckey.list("options-exclude"),
                outcome_exclude: speckey.list("outcome-exclude"),
            },
            wire: WireCfg {
                protocol: wire
                    .str("protocol")
                    .ok_or("wire-tokens.protocol")?
                    .to_string(),
                check: wire.list("check"),
                readme: wire.str("readme").ok_or("wire-tokens.readme")?.to_string(),
                verbs: wire.list("verbs"),
                error_codes: wire.list("error-codes"),
                allow_tokens: wire.list("allow-tokens"),
            },
            hygiene: HygieneCfg {
                require_attrs: hygiene.list("require-attrs"),
                exclude: hygiene.list("exclude"),
                ci_file: hygiene.str("ci-file").ok_or("hygiene.ci-file")?.to_string(),
                ci_must_contain: hygiene.list("ci-must-contain"),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_comments() {
        let doc = Document::parse(
            "top = \"x\" # comment\n[a]\nk = [\n  \"one\", # inline\n  \"two\",\n]\nflag = true\nn = 7\n[[a.b]]\nname = \"first\"\n[[a.b]]\nname = \"second\"\n",
        )
        .unwrap();
        assert_eq!(doc.section("").unwrap().str("top"), Some("x"));
        assert_eq!(doc.section("a").unwrap().list("k"), vec!["one", "two"]);
        assert_eq!(doc.tables("a.b").len(), 2);
        assert_eq!(doc.tables("a.b")[1].str("name"), Some("second"));
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let doc = Document::parse("k = \"a # b\"\n").unwrap();
        assert_eq!(doc.section("").unwrap().str("k"), Some("a # b"));
    }

    #[test]
    fn rejects_unsupported_syntax() {
        assert!(Document::parse("k = { a = 1 }\n").is_err());
        assert!(Document::parse("just words\n").is_err());
    }
}
