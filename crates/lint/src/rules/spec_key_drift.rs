//! The spec-key-drift rule.
//!
//! The result cache is content-addressed by `RunSpec::canonical_key()`,
//! which digests the spec's canonical text with the declared
//! outcome-irrelevant options normalised away.  Three classes of silent
//! drift are pinned here:
//!
//! - a new `EngineOptions` / `RunSpec` field that `to_text` /
//!   `text_with_options` does not render (the key would not see it —
//!   different scenarios would share a cache slot);
//! - a `canonical_key` normalisation that `lint.toml` does not declare,
//!   or a declared exclusion that `canonical_key` does not normalise
//!   (cache identity changed without anyone saying so);
//! - a `RunOutcome` field drifting into or out of the manual
//!   `PartialEq` — every field must be compared except the declared
//!   exclusions (`round_stats`), which must stay out of `eq` but still
//!   be serialised by `to_text`.

use crate::config::SpecKeyCfg;
use crate::lexer::SourceFile;
use crate::report::{Finding, Workspace};
use crate::scan::{mentions, scan_items, Item, ItemKind};

/// The rule name used in findings.
pub const RULE: &str = "spec-key-drift";

/// Runs the rule over the configured spec and outcome files.
pub fn run(ws: &Workspace, cfg: &SpecKeyCfg, findings: &mut Vec<Finding>) -> usize {
    let mut checked = 0;
    if let Some(spec) = load(ws, &cfg.spec_file, findings) {
        checked += 1;
        check_spec(&spec, cfg, findings);
    }
    if let Some(outcome) = load(ws, &cfg.outcome_file, findings) {
        checked += 1;
        check_outcome(&outcome, cfg, findings);
    }
    checked
}

fn load(ws: &Workspace, rel: &str, findings: &mut Vec<Finding>) -> Option<SourceFile> {
    match ws.load(rel) {
        Ok(file) => Some(file),
        Err(err) => {
            findings.push(Finding::new(
                RULE,
                rel,
                0,
                format!("configured file is unreadable: {err}"),
            ));
            None
        }
    }
}

fn check_spec(file: &SourceFile, cfg: &SpecKeyCfg, findings: &mut Vec<Finding>) {
    let items = scan_items(file);
    let missing = |findings: &mut Vec<Finding>, what: &str| {
        findings.push(Finding::new(
            RULE,
            &file.rel_path,
            0,
            format!("rule target `{what}` not found — the drift rule can no longer see it"),
        ));
    };

    // EngineOptions: every field rendered by its to_text.
    let options_fields = match struct_fields(file, &items, "EngineOptions") {
        Some(f) => f,
        None => {
            missing(findings, "struct EngineOptions");
            Vec::new()
        }
    };
    match find_fn(&items, "EngineOptions", "to_text") {
        Some(to_text) => {
            let body = to_text.body(file);
            for field in &options_fields {
                if !mentions(&body, field) {
                    findings.push(Finding::new(
                        RULE,
                        &file.rel_path,
                        file.lines[to_text.start].number,
                        format!(
                            "EngineOptions field `{field}` is not rendered by to_text — the canonical key will not see it"
                        ),
                    ));
                }
            }
        }
        None => missing(findings, "EngineOptions::to_text"),
    }

    // RunSpec: every field rendered by the shared text renderer.
    let spec_fields = match struct_fields(file, &items, "RunSpec") {
        Some(f) => f,
        None => {
            missing(findings, "struct RunSpec");
            Vec::new()
        }
    };
    match find_fn(&items, "RunSpec", "text_with_options") {
        Some(renderer) => {
            let body = renderer.body(file);
            for field in &spec_fields {
                if !mentions(&body, field) {
                    findings.push(Finding::new(
                        RULE,
                        &file.rel_path,
                        file.lines[renderer.start].number,
                        format!(
                            "RunSpec field `{field}` is not rendered by text_with_options — the canonical key will not see it"
                        ),
                    ));
                }
            }
        }
        None => missing(findings, "RunSpec::text_with_options"),
    }

    // canonical_key: the normalised options are exactly the declared
    // exclusions.
    match find_fn(&items, "RunSpec", "canonical_key") {
        Some(key_fn) => {
            let body = key_fn.body(file);
            let line = file.lines[key_fn.start].number;
            let normalised = assignments_to(&body, "options");
            for field in &cfg.options_exclude {
                if !options_fields.is_empty() && !options_fields.contains(field) {
                    findings.push(Finding::new(
                        RULE,
                        &file.rel_path,
                        line,
                        format!("declared excluded option `{field}` is not an EngineOptions field"),
                    ));
                }
                if !normalised.contains(field) {
                    findings.push(Finding::new(
                        RULE,
                        &file.rel_path,
                        line,
                        format!(
                            "declared excluded option `{field}` is not normalised away in canonical_key — it would change cache identity"
                        ),
                    ));
                }
            }
            for field in &normalised {
                if !cfg.options_exclude.contains(field) {
                    findings.push(Finding::new(
                        RULE,
                        &file.rel_path,
                        line,
                        format!(
                            "canonical_key normalises `{field}` but lint.toml does not declare it excluded"
                        ),
                    ));
                }
            }
        }
        None => missing(findings, "RunSpec::canonical_key"),
    }
}

fn check_outcome(file: &SourceFile, cfg: &SpecKeyCfg, findings: &mut Vec<Finding>) {
    let items = scan_items(file);
    let fields = match struct_fields(file, &items, "RunOutcome") {
        Some(f) => f,
        None => {
            findings.push(Finding::new(
                RULE,
                &file.rel_path,
                0,
                "rule target `struct RunOutcome` not found".to_string(),
            ));
            return;
        }
    };
    let Some(eq_fn) = find_fn(&items, "RunOutcome", "eq") else {
        findings.push(Finding::new(
            RULE,
            &file.rel_path,
            0,
            "rule target `RunOutcome::eq` (the manual PartialEq) not found".to_string(),
        ));
        return;
    };
    let eq_body = eq_fn.body(file);
    let eq_line = file.lines[eq_fn.start].number;
    for field in &fields {
        let excluded = cfg.outcome_exclude.contains(field);
        let compared = mentions(&eq_body, field);
        if excluded && compared {
            findings.push(Finding::new(
                RULE,
                &file.rel_path,
                eq_line,
                format!(
                    "RunOutcome field `{field}` is declared excluded from equality but RunOutcome::eq references it"
                ),
            ));
        }
        if !excluded && !compared {
            findings.push(Finding::new(
                RULE,
                &file.rel_path,
                eq_line,
                format!(
                    "RunOutcome field `{field}` is not compared by the manual PartialEq — declare it excluded in lint.toml or compare it"
                ),
            ));
        }
    }
    // Excluded fields stay observable: to_text must still serialise
    // them.
    if let Some(to_text) = find_fn(&items, "RunOutcome", "to_text") {
        let body = to_text.body(file);
        for field in &cfg.outcome_exclude {
            if fields.contains(field) && !mentions(&body, field) {
                findings.push(Finding::new(
                    RULE,
                    &file.rel_path,
                    file.lines[to_text.start].number,
                    format!(
                        "equality-excluded RunOutcome field `{field}` is not serialised by to_text — it would be silently dropped from the wire"
                    ),
                ));
            }
        }
    }
}

/// The named struct's field names, in declaration order.
fn struct_fields(file: &SourceFile, items: &[Item], name: &str) -> Option<Vec<String>> {
    let item = items
        .iter()
        .find(|i| i.kind == ItemKind::Struct && i.name == name)?;
    let mut fields = Vec::new();
    for line in &file.lines[item.start..=item.end] {
        let t = line.code.trim_start();
        let rest = t.strip_prefix("pub ").unwrap_or(t);
        let ident: String = rest
            .chars()
            .take_while(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '_')
            .collect();
        if !ident.is_empty() && rest[ident.len()..].starts_with(':') {
            fields.push(ident);
        }
    }
    Some(fields)
}

fn find_fn<'a>(items: &'a [Item], impl_type: &str, name: &str) -> Option<&'a Item> {
    items.iter().find(|i| {
        i.kind == ItemKind::Fn && i.name == name && i.impl_type.as_deref() == Some(impl_type)
    })
}

/// Field names assigned through `recv.<field> =` in a body.
fn assignments_to(body: &str, recv: &str) -> Vec<String> {
    let needle = format!("{recv}.");
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = body[from..].find(&needle) {
        let start = from + pos;
        let boundary = start == 0 || {
            let b = body.as_bytes()[start - 1];
            !(b.is_ascii_alphanumeric() || b == b'_' || b == b'.')
        };
        let after = &body[start + needle.len()..];
        let field: String = after
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        let rest = after[field.len()..].trim_start();
        if boundary
            && !field.is_empty()
            && rest.starts_with('=')
            && !rest.starts_with("==")
            && !out.contains(&field)
        {
            out.push(field);
        }
        from = start + needle.len();
    }
    out
}
