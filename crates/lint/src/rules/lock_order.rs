//! The lock-order rule.
//!
//! Classifies every `.lock()` site in the configured files into a
//! declared lock class (by receiver suffix, helper method, or acquiring
//! free function) and tracks guard lifetimes lexically: a guard bound by
//! `let` lives until its scope closes, an explicit `drop(name)`, or a
//! reassignment of the same binding; an unbound (temporary) guard lives
//! for its own statement only.  Findings:
//!
//! - acquiring a class *earlier* in the declared order while a later one
//!   is held (the order is the sequence locks must be taken in);
//! - re-entrant acquisition of a class already held in the same scope;
//! - a `.lock()` receiver no class claims (every site must be
//!   classified, so new locks cannot dodge the rule).
//!
//! The analysis is intra-procedural and path-insensitive — exactly
//! strong enough for the workspace's rustfmt-shaped code, and every
//! approximation errs toward a diagnostic, never toward silence.

use crate::config::LockOrderCfg;
use crate::lexer::SourceFile;
use crate::report::{Finding, Workspace};

/// The rule name used in findings.
pub const RULE: &str = "lock-order";

struct Guard {
    class: usize,
    var: Option<String>,
    depth: i64,
}

struct FnCtx {
    open_depth: i64,
    guards: Vec<Guard>,
}

enum Pending {
    Impl(String),
    Fn,
}

/// Runs the rule over every configured file.
pub fn run(ws: &Workspace, cfg: &LockOrderCfg, findings: &mut Vec<Finding>) -> usize {
    let mut checked = 0;
    for rel in &cfg.files {
        match ws.load(rel) {
            Ok(file) => {
                checked += 1;
                check_file(&file, cfg, findings);
            }
            Err(err) => findings.push(Finding::new(
                RULE,
                rel,
                0,
                format!("configured file is unreadable: {err}"),
            )),
        }
    }
    checked
}

fn check_file(file: &SourceFile, cfg: &LockOrderCfg, findings: &mut Vec<Finding>) {
    // `name(` tokens of configured acquiring functions, per class.
    let func_tokens: Vec<(String, usize)> = cfg
        .classes
        .iter()
        .enumerate()
        .flat_map(|(ci, class)| class.functions.iter().map(move |f| (format!("{f}("), ci)))
        .collect();
    let mut depth: i64 = 0;
    let mut impl_stack: Vec<(String, i64)> = Vec::new();
    let mut fn_stack: Vec<FnCtx> = Vec::new();
    let mut pending: Option<Pending> = None;
    let mut prev_tail = String::new();
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let t = code.trim_start();
        if t == "impl" || t.starts_with("impl ") || t.starts_with("impl<") {
            pending = Some(Pending::Impl(crate::scan::impl_type_of(t)));
        } else if has_fn_header(t) {
            pending = Some(Pending::Fn);
        }
        let bytes = code.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'{' => {
                    match pending.take() {
                        Some(Pending::Impl(ty)) => impl_stack.push((ty, depth)),
                        Some(Pending::Fn) => fn_stack.push(FnCtx {
                            open_depth: depth,
                            guards: Vec::new(),
                        }),
                        None => {}
                    }
                    depth += 1;
                    i += 1;
                }
                b'}' => {
                    depth -= 1;
                    if let Some(ctx) = fn_stack.last_mut() {
                        ctx.guards.retain(|g| g.depth <= depth);
                        if ctx.open_depth == depth {
                            fn_stack.pop();
                        }
                    }
                    if impl_stack.last().is_some_and(|(_, d)| *d == depth) {
                        impl_stack.pop();
                    }
                    i += 1;
                }
                b';' => {
                    pending = None;
                    i += 1;
                }
                b'd' if token_at(code, i, "drop(") => {
                    let name: String = code[i + 5..]
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                        .collect();
                    if let Some(ctx) = fn_stack.last_mut() {
                        ctx.guards
                            .retain(|g| g.var.as_deref() != Some(name.as_str()));
                    }
                    i += 5;
                }
                b'.' if code[i..].starts_with(".lock()") => {
                    lock_site(
                        file,
                        line,
                        code,
                        i,
                        &prev_tail,
                        cfg,
                        &impl_stack,
                        &mut fn_stack,
                        depth,
                        findings,
                    );
                    i += ".lock()".len();
                }
                b if b.is_ascii_alphabetic() => {
                    for (tok, class) in &func_tokens {
                        if token_at(code, i, tok) {
                            check_acquire(file, line, *class, cfg, &fn_stack, findings);
                        }
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
        let trimmed = code.trim_end();
        if !trimmed.trim_start().is_empty() {
            prev_tail = trailing_path(trimmed);
        }
    }
}

/// `true` when `t` starts a fn header (possibly behind visibility /
/// `const` / `unsafe` qualifiers).
fn has_fn_header(t: &str) -> bool {
    let mut rest = t;
    for prefix in ["pub(crate) ", "pub(super) ", "pub ", "const ", "unsafe "] {
        rest = rest.strip_prefix(prefix).unwrap_or(rest);
    }
    rest.starts_with("fn ")
}

/// Whether `needle` occurs at byte `i` of `code` on an identifier
/// boundary.
fn token_at(code: &str, i: usize, needle: &str) -> bool {
    if !code[i..].starts_with(needle) {
        return false;
    }
    i == 0 || {
        let b = code.as_bytes()[i - 1];
        !(b.is_ascii_alphanumeric() || b == b'_' || b == b'.')
    }
}

/// The trailing dotted path of a line (for `.lock()` calls wrapped onto
/// the next line).
fn trailing_path(code: &str) -> String {
    let bytes = code.as_bytes();
    let mut start = bytes.len();
    while start > 0 {
        let b = bytes[start - 1];
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' {
            start -= 1;
        } else {
            break;
        }
    }
    code[start..].trim_end_matches('.').to_string()
}

/// Handles one `.lock()` occurrence at byte `pos`.
#[allow(clippy::too_many_arguments)]
fn lock_site(
    file: &SourceFile,
    line: &crate::lexer::Line,
    code: &str,
    pos: usize,
    prev_tail: &str,
    cfg: &LockOrderCfg,
    impl_stack: &[(String, i64)],
    fn_stack: &mut [FnCtx],
    depth: i64,
    findings: &mut Vec<Finding>,
) {
    // Receiver: the dotted path immediately before `.lock()`, falling
    // back to the previous line's tail when the call was wrapped.
    let bytes = code.as_bytes();
    let mut start = pos;
    while start > 0 {
        let b = bytes[start - 1];
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' {
            start -= 1;
        } else {
            break;
        }
    }
    let mut receiver = code[start..pos].to_string();
    if receiver.is_empty() {
        receiver = prev_tail.to_string();
    }
    let class = classify(&receiver, cfg, impl_stack);
    let Some(class) = class else {
        findings.push(Finding::new(
            RULE,
            &file.rel_path,
            line.number,
            format!(
                "unclassified lock site: receiver `{}` matches no lock class in lint.toml",
                if receiver.is_empty() {
                    "<unknown>"
                } else {
                    &receiver
                }
            ),
        ));
        return;
    };
    check_acquire(file, line, class, cfg, fn_stack, findings);

    // Guard registration: `let NAME = …` binds, `NAME = …` rebinds
    // (releasing the old guard first), anything else is a temporary.
    let Some(ctx) = fn_stack.last_mut() else {
        return;
    };
    let before = code[..start].trim_end();
    let Some(lhs) = before.strip_suffix('=').map(str::trim_end) else {
        return;
    };
    if lhs.ends_with("==") || lhs.ends_with('!') || lhs.ends_with('<') || lhs.ends_with('>') {
        return;
    }
    let name = lhs
        .rsplit(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .next()
        .unwrap_or("")
        .to_string();
    if name.is_empty() {
        return;
    }
    let is_let = {
        let head = lhs.trim_start();
        head == "let" || head.starts_with("let ") || {
            // `let mut NAME` / a plain rebind both end in the name; a
            // `let` appears as its own word somewhere before it.
            crate::scan::mentions(lhs, "let")
        }
    };
    if !is_let {
        // Plain rebind only counts when the name is a known guard or the
        // whole LHS is just the name (a fresh temporary otherwise).
        let known = ctx
            .guards
            .iter()
            .any(|g| g.var.as_deref() == Some(name.as_str()));
        if !known && lhs != name {
            return;
        }
    }
    ctx.guards
        .retain(|g| g.var.as_deref() != Some(name.as_str()));
    ctx.guards.push(Guard {
        class,
        var: Some(name),
        depth,
    });
}

/// Reports order / re-entrancy violations of acquiring `class` with the
/// currently-held guards.
fn check_acquire(
    file: &SourceFile,
    line: &crate::lexer::Line,
    class: usize,
    cfg: &LockOrderCfg,
    fn_stack: &[FnCtx],
    findings: &mut Vec<Finding>,
) {
    let Some(ctx) = fn_stack.last() else {
        return;
    };
    let name = &cfg.classes[class].name;
    for guard in &ctx.guards {
        let held = &cfg.classes[guard.class].name;
        if guard.class == class {
            findings.push(Finding::new(
                RULE,
                &file.rel_path,
                line.number,
                format!("re-entrant acquisition of `{name}` (a `{held}` guard is already held in this scope)"),
            ));
            continue;
        }
        let new_idx = cfg.order.iter().position(|n| n == name);
        let held_idx = cfg.order.iter().position(|n| n == held);
        if let (Some(new_idx), Some(held_idx)) = (new_idx, held_idx) {
            if new_idx < held_idx {
                findings.push(Finding::new(
                    RULE,
                    &file.rel_path,
                    line.number,
                    format!(
                        "acquires `{name}` while holding `{held}`; the declared order is {}",
                        cfg.order.join(" < ")
                    ),
                ));
            }
        }
    }
}

/// Maps a receiver path (or `self` + the enclosing impl type) to a lock
/// class index.
fn classify(receiver: &str, cfg: &LockOrderCfg, impl_stack: &[(String, i64)]) -> Option<usize> {
    if receiver == "self" {
        let ty = impl_stack.last().map(|(t, _)| t.as_str())?;
        let wanted = format!("{ty}::lock");
        return cfg
            .classes
            .iter()
            .position(|c| c.helpers.iter().any(|h| h == &wanted));
    }
    let suffix = receiver.rsplit('.').next().unwrap_or(receiver);
    cfg.classes
        .iter()
        .position(|c| c.receivers.iter().any(|r| r == suffix))
}
