//! The wire-token consistency rule.
//!
//! `protocol.rs` is the single source of truth for the line-framed wire
//! protocol; the same verb and error-code spellings are repeated in the
//! request renderer, the client, the remote executor's error mapping,
//! the module's doc table and the README.  This rule extracts the
//! canonical sets from the protocol parser and asserts everything else
//! agrees:
//!
//! - the verbs matched by `Request::from_parts` are exactly the declared
//!   list, every one is rendered by `Request::wire`, and every one
//!   appears in the module doc table and the README protocol table;
//! - the error codes produced by `Response::from_error` are exactly the
//!   declared list;
//! - every wire-looking literal (lowercase-hyphenated) in the checked
//!   files is a declared code, verb or allowed token — a typo like
//!   `"not-dome"` cannot parse-fail silently.

use crate::config::WireCfg;
use crate::lexer::SourceFile;
use crate::report::{Finding, Workspace};
use crate::scan::{scan_items, Item, ItemKind};

/// The rule name used in findings.
pub const RULE: &str = "wire-tokens";

/// Runs the rule.
pub fn run(ws: &Workspace, cfg: &WireCfg, findings: &mut Vec<Finding>) -> usize {
    let mut checked = 0;
    let protocol = match ws.load(&cfg.protocol) {
        Ok(file) => {
            checked += 1;
            file
        }
        Err(err) => {
            findings.push(Finding::new(
                RULE,
                &cfg.protocol,
                0,
                format!("configured protocol file is unreadable: {err}"),
            ));
            return checked;
        }
    };
    let items = scan_items(&protocol);
    check_verbs(&protocol, &items, cfg, findings);
    check_error_codes(&protocol, &items, cfg, findings);

    for rel in &cfg.check {
        match ws.load(rel) {
            Ok(file) => {
                checked += 1;
                check_usage(&file, cfg, findings);
            }
            Err(err) => findings.push(Finding::new(
                RULE,
                rel,
                0,
                format!("configured file is unreadable: {err}"),
            )),
        }
    }

    match ws.read(&cfg.readme) {
        Ok(text) => {
            checked += 1;
            check_readme(&cfg.readme, &text, cfg, findings);
        }
        Err(err) => findings.push(Finding::new(
            RULE,
            &cfg.readme,
            0,
            format!("configured README is unreadable: {err}"),
        )),
    }
    checked
}

fn find_fn<'a>(items: &'a [Item], impl_type: &str, name: &str) -> Option<&'a Item> {
    items.iter().find(|i| {
        i.kind == ItemKind::Fn && i.name == name && i.impl_type.as_deref() == Some(impl_type)
    })
}

fn check_verbs(file: &SourceFile, items: &[Item], cfg: &WireCfg, findings: &mut Vec<Finding>) {
    let Some(from_parts) = find_fn(items, "Request", "from_parts") else {
        findings.push(Finding::new(
            RULE,
            &file.rel_path,
            0,
            "rule target `Request::from_parts` not found — the verb set can no longer be extracted"
                .to_string(),
        ));
        return;
    };
    let line = file.lines[from_parts.start].number;
    let parsed: Vec<String> = from_parts
        .strings(file)
        .filter(|s| s.len() >= 4 && s.chars().all(|c| c.is_ascii_uppercase()))
        .map(str::to_string)
        .collect();
    for verb in &cfg.verbs {
        if !parsed.contains(verb) {
            findings.push(Finding::new(
                RULE,
                &file.rel_path,
                line,
                format!("declared verb `{verb}` is not parsed by Request::from_parts"),
            ));
        }
    }
    for verb in &parsed {
        if !cfg.verbs.contains(verb) {
            findings.push(Finding::new(
                RULE,
                &file.rel_path,
                line,
                format!("Request::from_parts parses verb `{verb}` that lint.toml does not declare"),
            ));
        }
    }

    // Every verb must be rendered by the request serialiser…
    if let Some(wire_fn) = find_fn(items, "Request", "wire") {
        let wire_line = file.lines[wire_fn.start].number;
        for verb in &cfg.verbs {
            let rendered = wire_fn
                .strings(file)
                .any(|s| s.split_whitespace().any(|w| w == verb));
            if !rendered {
                findings.push(Finding::new(
                    RULE,
                    &file.rel_path,
                    wire_line,
                    format!("declared verb `{verb}` is not rendered by Request::wire"),
                ));
            }
        }
    } else {
        findings.push(Finding::new(
            RULE,
            &file.rel_path,
            0,
            "rule target `Request::wire` not found".to_string(),
        ));
    }

    // …documented in the module's doc table…
    for verb in &cfg.verbs {
        let documented = file
            .lines
            .iter()
            .any(|l| l.comment.contains('|') && l.comment.contains(verb.as_str()));
        if !documented {
            findings.push(Finding::new(
                RULE,
                &file.rel_path,
                1,
                format!("declared verb `{verb}` is missing from the protocol doc table"),
            ));
        }
    }
}

fn check_error_codes(
    file: &SourceFile,
    items: &[Item],
    cfg: &WireCfg,
    findings: &mut Vec<Finding>,
) {
    let Some(from_error) = find_fn(items, "Response", "from_error") else {
        findings.push(Finding::new(
            RULE,
            &file.rel_path,
            0,
            "rule target `Response::from_error` not found — the error-code set can no longer be extracted".to_string(),
        ));
        return;
    };
    let line = file.lines[from_error.start].number;
    let produced: Vec<String> = from_error
        .strings(file)
        .filter(|s| is_wire_code(s))
        .map(str::to_string)
        .collect();
    for code in &cfg.error_codes {
        if !produced.contains(code) {
            findings.push(Finding::new(
                RULE,
                &file.rel_path,
                line,
                format!("declared error code `{code}` is not produced by Response::from_error"),
            ));
        }
    }
    for code in &produced {
        if !cfg.error_codes.contains(code) {
            findings.push(Finding::new(
                RULE,
                &file.rel_path,
                line,
                format!(
                    "Response::from_error produces code `{code}` that lint.toml does not declare"
                ),
            ));
        }
    }
}

/// Every hyphenated wire-looking literal in a checked file must be a
/// declared error code, a declared verb (lowercased) or an allowed
/// token.
fn check_usage(file: &SourceFile, cfg: &WireCfg, findings: &mut Vec<Finding>) {
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        for (_, s) in &line.strings {
            if !is_hyphenated_code(s) {
                continue;
            }
            let known = cfg.error_codes.iter().any(|c| c == s)
                || cfg.verbs.iter().any(|v| v.to_ascii_lowercase() == *s)
                || cfg.allow_tokens.iter().any(|t| t == s);
            if !known {
                findings.push(Finding::new(
                    RULE,
                    &file.rel_path,
                    line.number,
                    format!(
                        "wire-looking literal `\"{s}\"` matches no declared protocol token — a drifted spelling would fail at runtime, not here"
                    ),
                ));
            }
        }
    }
}

fn check_readme(rel: &str, text: &str, cfg: &WireCfg, findings: &mut Vec<Finding>) {
    for verb in &cfg.verbs {
        let listed = text.lines().any(|l| {
            let t = l.trim_start();
            t.starts_with(verb.as_str())
                && !t[verb.len()..]
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphanumeric())
        });
        if !listed {
            findings.push(Finding::new(
                RULE,
                rel,
                0,
                format!("declared verb `{verb}` is missing from the README protocol table"),
            ));
        }
    }
}

/// `io`, `queue-full`, … — lowercase words joined by single hyphens.
fn is_wire_code(s: &str) -> bool {
    !s.is_empty()
        && s.split('-')
            .all(|w| !w.is_empty() && w.chars().all(|c| c.is_ascii_lowercase()))
}

/// As [`is_wire_code`], but requiring at least one hyphen (bare words
/// like `auto` are too common to police).
fn is_hyphenated_code(s: &str) -> bool {
    s.contains('-') && is_wire_code(s)
}
