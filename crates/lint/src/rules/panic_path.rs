//! The panic-path rule.
//!
//! Forbids `unwrap()` / `expect()` / `panic!` / `todo!` /
//! `unimplemented!` / `unreachable!` in the non-test code of the
//! configured paths.  Two escape hatches, both auditable:
//!
//! - an `.expect("…")` whose message contains a configured substring
//!   (the workspace uses `poisoned`) is the documented Mutex-poisoning
//!   idiom and is recorded as a *suppressed* finding with a blanket
//!   reason — it still appears in `LINT.json`;
//! - a `// lint: allow(panic) <reason>` comment on the same or the
//!   preceding line suppresses a site explicitly (handled by the shared
//!   suppression pass; a missing reason keeps the finding fatal).

use crate::config::PanicCfg;
use crate::lexer::SourceFile;
use crate::report::{Finding, Workspace};

/// The rule name used in findings.
pub const RULE: &str = "panic-path";

const MACROS: [&str; 4] = ["panic!", "todo!", "unimplemented!", "unreachable!"];

/// Runs the rule over every file under the configured include paths.
pub fn run(ws: &Workspace, cfg: &PanicCfg, findings: &mut Vec<Finding>) -> usize {
    let mut checked = 0;
    for entry in &cfg.include {
        for rel in ws.rust_files_under(entry) {
            if rel.contains("/tests/") || rel.contains("/benches/") {
                continue;
            }
            match ws.load(&rel) {
                Ok(file) => {
                    checked += 1;
                    check_file(&file, cfg, findings);
                }
                Err(err) => findings.push(Finding::new(
                    RULE,
                    &rel,
                    0,
                    format!("configured file is unreadable: {err}"),
                )),
            }
        }
    }
    checked
}

fn check_file(file: &SourceFile, cfg: &PanicCfg, findings: &mut Vec<Finding>) {
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        for _ in find_all(code, ".unwrap()") {
            findings.push(Finding::new(
                RULE,
                &file.rel_path,
                line.number,
                "`unwrap()` on a non-test path; return an error or justify with `// lint: allow(panic) <reason>`".to_string(),
            ));
        }
        for pos in find_all(code, ".expect(") {
            let message = line
                .strings
                .iter()
                .find(|(col, _)| *col >= pos)
                .map(|(_, s)| s.as_str())
                .unwrap_or("");
            let blanket = cfg
                .allow_expect_containing
                .iter()
                .find(|needle| message.contains(needle.as_str()));
            let mut finding = Finding::new(
                RULE,
                &file.rel_path,
                line.number,
                format!("`expect(\"{message}\")` on a non-test path"),
            );
            if let Some(needle) = blanket {
                finding.suppressed = Some(format!(
                    "expect message contains `{needle}` — the documented Mutex-poisoning blanket allowlist (lint.toml)"
                ));
            }
            findings.push(finding);
        }
        for mac in MACROS {
            for pos in find_all(code, mac) {
                let boundary = pos == 0 || {
                    let b = code.as_bytes()[pos - 1];
                    !(b.is_ascii_alphanumeric() || b == b'_')
                };
                if boundary {
                    findings.push(Finding::new(
                        RULE,
                        &file.rel_path,
                        line.number,
                        format!("`{mac}(…)` on a non-test path"),
                    ));
                }
            }
        }
    }
}

fn find_all(code: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(needle) {
        out.push(from + pos);
        from += pos + needle.len();
    }
    out
}
