//! The rule registry and the shared suppression pass.

pub mod hygiene;
pub mod lock_order;
pub mod panic_path;
pub mod spec_key_drift;
pub mod wire_tokens;

use crate::config::LintConfig;
use crate::report::{Finding, Report, Workspace};
use std::collections::HashSet;

/// Runs every rule and applies `// lint: allow(...)` suppressions.
pub fn run_all(ws: &Workspace, cfg: &LintConfig) -> Report {
    let mut findings = Vec::new();
    let mut files = 0;
    files += lock_order::run(ws, &cfg.lock, &mut findings);
    files += panic_path::run(ws, &cfg.panic, &mut findings);
    files += spec_key_drift::run(ws, &cfg.speckey, &mut findings);
    files += wire_tokens::run(ws, &cfg.wire, &mut findings);
    files += hygiene::run(ws, &cfg.hygiene, &mut findings);
    apply_suppressions(ws, &mut findings);
    Report {
        findings,
        checked_files: files,
    }
}

/// The comment keys a rule's findings can be suppressed with: the rule
/// name itself plus a short alias.
fn allow_keys(rule: &str) -> Vec<&str> {
    match rule {
        "panic-path" => vec!["panic-path", "panic"],
        "lock-order" => vec!["lock-order", "lock"],
        other => vec![other],
    }
}

/// Scans the finding's own line plus the contiguous comment block above
/// it for `lint: allow(<key>) <reason>` comments (justifications often
/// wrap across lines).  A match without a reason keeps the finding
/// fatal — suppressions must be justified.
fn apply_suppressions(ws: &Workspace, findings: &mut [Finding]) {
    let files: HashSet<String> = findings
        .iter()
        .filter(|f| f.suppressed.is_none() && f.line > 0 && f.file.ends_with(".rs"))
        .map(|f| f.file.clone())
        .collect();
    for rel in files {
        let Ok(file) = ws.load(&rel) else {
            continue;
        };
        for finding in findings.iter_mut() {
            if finding.suppressed.is_some() || finding.file != rel || finding.line == 0 {
                continue;
            }
            let idx = finding.line - 1;
            // The comment text in scope: pure-comment lines directly
            // above the finding, top to bottom, then the finding's own
            // trailing comment.
            let mut start = idx;
            while start > 0 {
                let above = &file.lines[start - 1];
                if above.code.trim().is_empty() && !above.comment.trim().is_empty() {
                    start -= 1;
                } else {
                    break;
                }
            }
            let block = file.lines[start..=idx]
                .iter()
                .map(|l| l.comment.trim())
                .collect::<Vec<_>>()
                .join(" ");
            for key in allow_keys(finding.rule) {
                let marker = format!("lint: allow({key})");
                let Some(pos) = block.find(&marker) else {
                    continue;
                };
                let reason = block[pos + marker.len()..].trim();
                if reason.len() >= 3 {
                    finding.suppressed = Some(reason.to_string());
                } else {
                    finding.message.push_str(
                        " [a `lint: allow` comment matches but carries no justification]",
                    );
                }
                break;
            }
        }
    }
}
