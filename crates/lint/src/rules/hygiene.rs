//! The crate-hygiene rule.
//!
//! Every non-vendor `lib.rs` must carry the workspace's safety header
//! (`#![deny(unsafe_code)]`, plus whatever else `lint.toml` requires),
//! and the CI workflow must keep the clippy and lint gates — a deleted
//! CI step is exactly the kind of rot nothing else would notice.

use crate::config::HygieneCfg;
use crate::report::{Finding, Workspace};

/// The rule name used in findings.
pub const RULE: &str = "hygiene";

/// Runs the rule.
pub fn run(ws: &Workspace, cfg: &HygieneCfg, findings: &mut Vec<Finding>) -> usize {
    let mut checked = 0;
    for rel in ws.lib_files(&cfg.exclude) {
        match ws.read(&rel) {
            Ok(text) => {
                checked += 1;
                for attr in &cfg.require_attrs {
                    if !text.contains(attr.as_str()) {
                        findings.push(Finding::new(
                            RULE,
                            &rel,
                            1,
                            format!("missing required crate attribute `{attr}`"),
                        ));
                    }
                }
            }
            Err(err) => findings.push(Finding::new(
                RULE,
                &rel,
                0,
                format!("lib.rs is unreadable: {err}"),
            )),
        }
    }
    match ws.read(&cfg.ci_file) {
        Ok(text) => {
            checked += 1;
            for gate in &cfg.ci_must_contain {
                if !text.contains(gate.as_str()) {
                    findings.push(Finding::new(
                        RULE,
                        &cfg.ci_file,
                        0,
                        format!("CI workflow no longer contains the gate `{gate}`"),
                    ));
                }
            }
        }
        Err(err) => findings.push(Finding::new(
            RULE,
            &cfg.ci_file,
            0,
            format!("CI workflow is unreadable: {err}"),
        )),
    }
    checked
}
