//! A brace-depth item scanner over lexed lines.
//!
//! Recovers just enough structure for the rules: which `impl` block a
//! line sits in, where each `fn` and `struct` body starts and ends, and
//! the concatenated body code / string literals of an item.  Purely
//! lexical — good enough for rustfmt-formatted sources, and the rules
//! double-check that every item they depend on was actually found.

use crate::lexer::SourceFile;

/// What kind of item a scanner entry describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// A function body.
    Fn,
    /// A struct body.
    Struct,
}

/// One `fn` or `struct` item with its body line range.
#[derive(Clone, Debug)]
pub struct Item {
    /// The kind of item.
    pub kind: ItemKind,
    /// The item's name.
    pub name: String,
    /// The `Self` type of the enclosing `impl` block, if any (for
    /// `impl Trait for Type`, the `Type`).
    pub impl_type: Option<String>,
    /// 0-based index of the line where the body opens.
    pub start: usize,
    /// 0-based index of the line where the body closes.
    pub end: usize,
}

impl Item {
    /// The item's body code: every line's code from `start` to `end`,
    /// newline-joined.
    pub fn body(&self, file: &SourceFile) -> String {
        file.lines[self.start..=self.end]
            .iter()
            .map(|l| l.code.as_str())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// The string literals inside the item's line range.
    pub fn strings<'a>(&self, file: &'a SourceFile) -> impl Iterator<Item = &'a str> {
        file.lines[self.start..=self.end]
            .iter()
            .flat_map(|l| l.strings.iter().map(|(_, s)| s.as_str()))
    }
}

enum Pending {
    Impl(String),
    Item(ItemKind, String),
}

struct Open {
    kind: OpenKind,
    depth: i64,
}

enum OpenKind {
    Impl(String),
    Item(usize), // index into items
    Block,
}

/// Scans a lexed file into its `fn` / `struct` items.
pub fn scan_items(file: &SourceFile) -> Vec<Item> {
    let mut items: Vec<Item> = Vec::new();
    let mut stack: Vec<Open> = Vec::new();
    let mut pending: Option<Pending> = None;
    let mut depth: i64 = 0;
    for (idx, line) in file.lines.iter().enumerate() {
        if let Some(p) = detect_header(&line.code) {
            pending = Some(p);
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    let kind = match pending.take() {
                        Some(Pending::Impl(ty)) => OpenKind::Impl(ty),
                        Some(Pending::Item(kind, name)) => {
                            let impl_type = stack.iter().rev().find_map(|o| match &o.kind {
                                OpenKind::Impl(ty) => Some(ty.clone()),
                                _ => None,
                            });
                            items.push(Item {
                                kind,
                                name,
                                impl_type,
                                start: idx,
                                end: idx,
                            });
                            OpenKind::Item(items.len() - 1)
                        }
                        None => OpenKind::Block,
                    };
                    stack.push(Open { kind, depth });
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if stack.last().is_some_and(|o| o.depth == depth) {
                        if let Some(Open {
                            kind: OpenKind::Item(i),
                            ..
                        }) = stack.pop()
                        {
                            items[i].end = idx;
                        }
                    }
                }
                // A `;` before the body opens means a braceless item
                // (trait method declaration, tuple struct): drop it.
                ';' => pending = None,
                _ => {}
            }
        }
    }
    items
}

/// Recognises `impl` / `fn` / `struct` headers at the start of a line's
/// code (rustfmt puts each on its own line).
fn detect_header(code: &str) -> Option<Pending> {
    let t = code.trim_start();
    if t == "impl" || t.starts_with("impl ") || t.starts_with("impl<") {
        return Some(Pending::Impl(impl_type_of(t)));
    }
    if let Some(name) = item_name(t, "fn") {
        return Some(Pending::Item(ItemKind::Fn, name));
    }
    if let Some(name) = item_name(t, "struct") {
        return Some(Pending::Item(ItemKind::Struct, name));
    }
    None
}

/// Extracts the name following `kw` in a (possibly `pub`-prefixed)
/// header line.
fn item_name(t: &str, kw: &str) -> Option<String> {
    let mut rest = t;
    for prefix in ["pub(crate) ", "pub(super) ", "pub ", "const ", "unsafe "] {
        rest = rest.strip_prefix(prefix).unwrap_or(rest);
    }
    let rest = rest.strip_prefix(kw)?.strip_prefix(' ')?;
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// The `Self` type of an `impl` header: the segment after `for` when
/// present, otherwise the first type after the generics.
pub fn impl_type_of(t: &str) -> String {
    let mut rest = t.trim_start_matches("impl").trim_start();
    if rest.starts_with('<') {
        let mut level = 0i32;
        let mut cut = rest.len();
        for (i, c) in rest.char_indices() {
            match c {
                '<' => level += 1,
                '>' => {
                    level -= 1;
                    if level == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = rest[cut..].trim_start();
    }
    let rest = match rest.split_once(" for ") {
        Some((_, after)) => after.trim_start(),
        None => rest,
    };
    let ty: &str = rest
        .split(|c: char| c == '<' || c == '{' || c.is_whitespace())
        .next()
        .unwrap_or("");
    ty.rsplit("::").next().unwrap_or("").to_string()
}

/// Whether `word` occurs in `text` with non-identifier characters (or
/// boundaries) on both sides.
pub fn mentions(text: &str, word: &str) -> bool {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = text[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let left_ok = start == 0 || {
            let b = bytes[start - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let right_ok = end == bytes.len() || {
            let b = bytes[end];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;

    #[test]
    fn finds_fns_structs_and_impl_types() {
        let src = "pub struct Widget {\n    pub size: usize,\n}\n\nimpl Widget {\n    pub fn grow(&mut self) {\n        self.size += 1;\n    }\n}\n\nimpl Clone for Widget {\n    fn clone(&self) -> Self {\n        Widget { size: self.size }\n    }\n}\n";
        let f = SourceFile::parse("t.rs", src);
        let items = scan_items(&f);
        let widget = items
            .iter()
            .find(|i| i.kind == ItemKind::Struct && i.name == "Widget")
            .unwrap();
        assert!(widget.body(&f).contains("pub size"));
        let grow = items.iter().find(|i| i.name == "grow").unwrap();
        assert_eq!(grow.impl_type.as_deref(), Some("Widget"));
        let clone = items.iter().find(|i| i.name == "clone").unwrap();
        assert_eq!(clone.impl_type.as_deref(), Some("Widget"));
        assert!(clone.body(&f).contains("self.size"));
    }

    #[test]
    fn generic_impl_headers_resolve_to_the_self_type() {
        assert_eq!(impl_type_of("impl<T: Clone> Holder<T> {"), "Holder");
        assert_eq!(
            impl_type_of("impl fmt::Display for ExecError {"),
            "ExecError"
        );
        assert_eq!(impl_type_of("impl<'a> Iterator for Walker<'a> {"), "Walker");
    }

    #[test]
    fn word_boundaries() {
        assert!(mentions("self.rounds == other.rounds", "rounds"));
        assert!(!mentions("self.round_stats", "rounds"));
        assert!(mentions("options.threads = 0;", "threads"));
    }
}
