//! A minimal line-oriented Rust lexer.
//!
//! The rule engine does not need a syntax tree — only a faithful
//! separation of each line into *code*, *comment text* and *string
//! literals*, plus a flag marking test-only regions.  This module walks
//! the raw bytes once, tracking comments (line and nested block), string
//! literals (plain, byte, raw, char) and `#[cfg(test)]` / `#[test]`
//! item bodies by brace depth.
//!
//! Known, documented approximations (the workspace is rustfmt-clean, so
//! these shapes do not occur in practice):
//!
//! - a `#[cfg(test)]` attribute sharing a line with the item it gates is
//!   not recognised (rustfmt always splits them);
//! - a string literal spanning lines is attributed piecewise to each
//!   line it covers.

/// One source line, split into the channels the rules consume.
#[derive(Debug)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// The line's code with comments removed and string/char literal
    /// *contents* stripped (an empty `""` marks where a string sat, so
    /// token positions in the remaining code stay meaningful).
    pub code: String,
    /// Comment text on this line (line and block comments, markers
    /// removed).
    pub comment: String,
    /// String literal contents on this line as `(column in code,
    /// content)` pairs, in source order.  Common escapes (`\n`, `\t`,
    /// `\"`, …) are decoded so the content matches the runtime value.
    pub strings: Vec<(usize, String)>,
    /// Whether any part of the line sits inside a `#[cfg(test)]` or
    /// `#[test]` item body.
    pub in_test: bool,
}

/// A lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, used in diagnostics.
    pub rel_path: String,
    /// The lexed lines, in order.
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Lexes `text` (the contents of `rel_path`).
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let mut lx = Lexer {
            bytes: text.as_bytes(),
            i: 0,
            lines: Vec::new(),
            number: 1,
            code: String::new(),
            comment: String::new(),
            strings: Vec::new(),
            depth: 0,
            pending_test: false,
            test_depth: None,
            was_test: false,
        };
        lx.run();
        SourceFile {
            rel_path: rel_path.to_string(),
            lines: lx.lines,
        }
    }
}

struct Lexer<'a> {
    bytes: &'a [u8],
    i: usize,
    lines: Vec<Line>,
    number: usize,
    code: String,
    comment: String,
    strings: Vec<(usize, String)>,
    depth: i64,
    /// Saw a test attribute; the next opening brace starts a test region.
    pending_test: bool,
    /// Brace depth at which the active test region opened.
    test_depth: Option<i64>,
    /// Whether the test region was active when the current line started.
    was_test: bool,
}

impl Lexer<'_> {
    fn run(&mut self) {
        while self.i < self.bytes.len() {
            let c = self.bytes[self.i];
            match c {
                b'\n' => {
                    self.i += 1;
                    self.flush_line();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(0),
                b'r' | b'b' if self.raw_prefix_len().is_some() => {
                    let hashes = self.raw_prefix_len().unwrap_or(0);
                    self.string(hashes)
                }
                b'\'' => self.char_or_lifetime(),
                b'{' => {
                    if self.pending_test && self.test_depth.is_none() {
                        self.test_depth = Some(self.depth);
                        self.pending_test = false;
                    }
                    self.depth += 1;
                    self.push_code(b'{');
                }
                b'}' => {
                    self.depth -= 1;
                    if self.test_depth == Some(self.depth) {
                        self.test_depth = None;
                    }
                    self.push_code(b'}');
                }
                b';' => {
                    // An attribute followed by a braceless item (e.g.
                    // `#[cfg(test)] use …;`) gates only that item.
                    if self.test_depth.is_none() {
                        self.pending_test = false;
                    }
                    self.push_code(b';');
                }
                _ => self.push_code(c),
            }
        }
        if !self.code.is_empty() || !self.comment.is_empty() || !self.strings.is_empty() {
            self.flush_line();
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.i + ahead).copied()
    }

    fn push_code(&mut self, c: u8) {
        self.code.push(c as char);
        self.i += 1;
    }

    fn flush_line(&mut self) {
        let code = std::mem::take(&mut self.code);
        if self.test_depth.is_none() && (code.contains("#[cfg(test)]") || code.contains("#[test]"))
        {
            self.pending_test = true;
        }
        self.lines.push(Line {
            number: self.number,
            code,
            comment: std::mem::take(&mut self.comment),
            strings: std::mem::take(&mut self.strings),
            in_test: self.was_test || self.test_depth.is_some(),
        });
        self.number += 1;
        self.was_test = self.test_depth.is_some();
    }

    fn line_comment(&mut self) {
        self.i += 2; // the `//`
                     // Strip doc markers (`/` or `!`) so the comment text is uniform.
        while matches!(self.peek(0), Some(b'/') | Some(b'!')) {
            self.i += 1;
        }
        while let Some(c) = self.peek(0) {
            if c == b'\n' {
                break;
            }
            self.comment.push(c as char);
            self.i += 1;
        }
    }

    fn block_comment(&mut self) {
        self.i += 2;
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (None, _) => return,
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.i += 2;
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.i += 2;
                }
                (Some(b'\n'), _) => {
                    self.i += 1;
                    self.flush_line();
                }
                (Some(c), _) => {
                    self.comment.push(c as char);
                    self.i += 1;
                }
            }
        }
    }

    /// At a `r`/`b` byte: the length of a raw/byte string prefix ending
    /// in `"` (number of `#`s), or `None` if this is a plain identifier.
    /// `self.i` is left on the prefix; `string()` consumes from the `"`.
    fn raw_prefix_len(&self) -> Option<usize> {
        if self.i > 0 {
            let prev = self.bytes[self.i - 1];
            if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b'"' {
                return None;
            }
        }
        let mut j = self.i;
        let mut raw = false;
        if self.bytes.get(j) == Some(&b'b') {
            j += 1;
        }
        if self.bytes.get(j) == Some(&b'r') {
            raw = true;
            j += 1;
        }
        let mut hashes = 0;
        while raw && self.bytes.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if self.bytes.get(j) == Some(&b'"') && (raw || j > self.i) {
            Some(hashes)
        } else {
            None
        }
    }

    /// Consumes a string literal (plain, byte or raw with `hashes` `#`s),
    /// recording its content.  `self.i` sits on the prefix or quote.
    fn string(&mut self, hashes: usize) {
        let raw = self.bytes[self.i] != b'"' && {
            // Skip the `b`/`r`/`#` prefix up to the opening quote.
            while self.bytes[self.i] != b'"' {
                self.i += 1;
            }
            self.bytes[self.i - 1] == b'r' || self.bytes[self.i - 1] == b'#'
        };
        let mut col = self.code.len();
        self.code.push('"');
        self.i += 1; // opening quote
        let mut buf = String::new();
        loop {
            match self.peek(0) {
                None => break,
                Some(b'"') => {
                    // A raw string closes only on `"` + its `#`s.
                    if hashes > 0 {
                        let tail: Vec<u8> = (1..=hashes).filter_map(|k| self.peek(k)).collect();
                        if tail.len() < hashes || tail.iter().any(|&b| b != b'#') {
                            buf.push('"');
                            self.i += 1;
                            continue;
                        }
                        self.i += hashes;
                    }
                    self.i += 1;
                    self.code.push('"');
                    break;
                }
                Some(b'\\') if !raw => {
                    self.i += 1;
                    match self.peek(0) {
                        // A `\` before a real newline is a line
                        // continuation — leave the newline for the
                        // multi-line arm so numbering stays right.
                        None | Some(b'\n') => {}
                        Some(b'n') => {
                            buf.push('\n');
                            self.i += 1;
                        }
                        Some(b't') => {
                            buf.push('\t');
                            self.i += 1;
                        }
                        Some(b'r') => {
                            buf.push('\r');
                            self.i += 1;
                        }
                        Some(b'0') => {
                            buf.push('\0');
                            self.i += 1;
                        }
                        Some(esc @ (b'\\' | b'"' | b'\'')) => {
                            buf.push(esc as char);
                            self.i += 1;
                        }
                        // `\u{…}`, `\x..` — keep the raw spelling.
                        Some(esc) => {
                            buf.push('\\');
                            buf.push(esc as char);
                            self.i += 1;
                        }
                    }
                }
                Some(b'\n') => {
                    // Multi-line literal: attribute the piece seen so far
                    // to the line it sits on, then continue.
                    self.strings.push((col, std::mem::take(&mut buf)));
                    self.i += 1;
                    self.flush_line();
                    col = 0;
                }
                Some(c) => {
                    buf.push(c as char);
                    self.i += 1;
                }
            }
        }
        self.strings.push((col, buf));
    }

    /// Distinguishes a char literal from a lifetime at a `'`.
    fn char_or_lifetime(&mut self) {
        let next = self.peek(1);
        let is_char = match next {
            Some(b'\\') => true,
            Some(c) if c >= 0x80 => true, // multi-byte scalar
            Some(_) => self.peek(2) == Some(b'\''),
            None => false,
        };
        if !is_char {
            self.push_code(b'\'');
            return;
        }
        self.code.push_str("''");
        self.i += 1; // opening quote
        loop {
            match self.peek(0) {
                None | Some(b'\n') => break,
                Some(b'\\') => self.i += 2,
                Some(b'\'') => {
                    self.i += 1;
                    break;
                }
                Some(_) => self.i += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_stripped_from_code() {
        let src = "let a = \"x.lock()\"; // trailing .lock()\nlet b = 1; /* block\nstill block */ let c = 2;\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.lines.len(), 3);
        assert!(!f.lines[0].code.contains("lock"));
        assert_eq!(f.lines[0].strings[0].1, "x.lock()");
        assert!(f.lines[0].comment.contains(".lock()"));
        assert!(f.lines[1].comment.contains("block"));
        assert!(f.lines[2].code.contains("let c"));
    }

    #[test]
    fn raw_and_char_literals() {
        let src = "let s = r#\"raw \"quoted\" text\"#;\nlet c = '{'; let l: &'static str = \"v\";\nlet b = b\"bytes\";\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.lines[0].strings[0].1, "raw \"quoted\" text");
        // The `'{'` char literal must not disturb brace tracking.
        assert!(!f.lines[1].code.contains('{'));
        assert_eq!(f.lines[1].strings[0].1, "v");
        assert_eq!(f.lines[2].strings[0].1, "bytes");
    }

    #[test]
    fn escapes_decode_to_runtime_contents() {
        let src = "let s = \"STATS\\n\"; let q = \"a\\\"b\\\\c\";\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.lines[0].strings[0].1, "STATS\n");
        assert_eq!(f.lines[0].strings[1].1, "a\"b\\c");
    }

    #[test]
    fn test_regions_cover_attribute_gated_bodies() {
        let src = "fn real() {\n    work();\n}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.lines[1].in_test, "real body");
        assert!(f.lines[5].in_test, "test helper");
        assert!(f.lines[6].in_test, "closing brace line");
        assert!(!f.lines[7].in_test, "code after the region");
    }

    #[test]
    fn braceless_test_attribute_does_not_leak() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() {\n    x();\n}\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.lines[3].in_test);
    }

    #[test]
    fn multiline_strings_keep_line_numbers() {
        let src = "let s = \"first\nsecond\";\nlet t = 3;\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.lines.len(), 3);
        assert_eq!(f.lines[0].strings[0].1, "first");
        assert_eq!(f.lines[1].strings[0].1, "second");
        assert_eq!(f.lines[2].number, 3);
    }
}
