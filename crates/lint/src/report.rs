//! Findings, the JSON report and workspace file access.

use crate::lexer::SourceFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One diagnostic produced by a rule.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The rule that produced it (`lock-order`, `panic-path`, …).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number (0 when the finding is file-level).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// `Some(justification)` when an allowlist entry or a
    /// `// lint: allow(...)` comment suppresses the finding.
    pub suppressed: Option<String>,
}

impl Finding {
    /// An unsuppressed finding.
    pub fn new(rule: &'static str, file: &str, line: usize, message: String) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message,
            suppressed: None,
        }
    }
}

/// The result of a full lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, suppressed or not, in rule order.
    pub findings: Vec<Finding>,
    /// Number of files the rules inspected.
    pub checked_files: usize,
}

impl Report {
    /// The findings that fail the run.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }

    /// Renders the machine-readable `LINT.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"tool\": \"ctori-lint\",\n");
        out.push_str(&format!("  \"checked_files\": {},\n", self.checked_files));
        out.push_str(&format!(
            "  \"unsuppressed\": {},\n",
            self.unsuppressed().count()
        ));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"suppressed\": {}, \"reason\": {}}}",
                json_escape(f.rule),
                json_escape(&f.file),
                f.line,
                json_escape(&f.message),
                f.suppressed.is_some(),
                match &f.suppressed {
                    Some(reason) => format!("\"{}\"", json_escape(reason)),
                    None => "null".to_string(),
                }
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Read-only access to the workspace being checked.
pub struct Workspace {
    root: PathBuf,
}

impl Workspace {
    /// A workspace rooted at `root`.
    pub fn new(root: &Path) -> Workspace {
        Workspace {
            root: root.to_path_buf(),
        }
    }

    /// The raw contents of a workspace-relative file.
    pub fn read(&self, rel: &str) -> io::Result<String> {
        fs::read_to_string(self.root.join(rel))
    }

    /// Lexes a workspace-relative Rust file.
    pub fn load(&self, rel: &str) -> io::Result<SourceFile> {
        Ok(SourceFile::parse(rel, &self.read(rel)?))
    }

    /// Whether a workspace-relative path exists.
    pub fn exists(&self, rel: &str) -> bool {
        self.root.join(rel).exists()
    }

    /// Expands an include entry to Rust files: a `.rs` file maps to
    /// itself, a directory to every `.rs` file beneath it (sorted).
    pub fn rust_files_under(&self, rel: &str) -> Vec<String> {
        let full = self.root.join(rel);
        if full.is_file() {
            return vec![rel.to_string()];
        }
        let mut out = Vec::new();
        collect_rs(&self.root, &full, &mut out);
        out.sort();
        out
    }

    /// Every non-vendor `lib.rs`: the facade crate's plus one per
    /// workspace crate, minus `exclude` path prefixes.
    pub fn lib_files(&self, exclude: &[String]) -> Vec<String> {
        let mut out = Vec::new();
        if self.exists("src/lib.rs") {
            out.push("src/lib.rs".to_string());
        }
        let crates = self.root.join("crates");
        if let Ok(entries) = fs::read_dir(&crates) {
            let mut dirs: Vec<PathBuf> = entries
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_dir())
                .collect();
            dirs.sort();
            for dir in dirs {
                let lib = dir.join("src/lib.rs");
                if let Some(rel) = self.relativize(&lib) {
                    if lib.is_file() && !exclude.iter().any(|p| rel.starts_with(p.as_str())) {
                        out.push(rel);
                    }
                }
            }
        }
        out
    }

    fn relativize(&self, path: &Path) -> Option<String> {
        path.strip_prefix(&self.root)
            .ok()
            .map(|p| p.to_string_lossy().replace('\\', "/"))
    }
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(root, &path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}
