//! Self-tests: every rule runs against a passing and a violating
//! fixture tree, and the real workspace configuration stays clean.

use ctori_lint::check;
use ctori_lint::report::Report;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(name: &str) -> Report {
    let root = fixture(name);
    let cfg = std::fs::read_to_string(root.join("lint.toml")).expect("fixture lint.toml");
    check(&root, &cfg).expect("fixture config parses")
}

/// The unsuppressed messages a rule produced, for substring assertions.
fn fatal_messages(report: &Report, rule: &str) -> Vec<String> {
    report
        .unsuppressed()
        .filter(|f| f.rule == rule)
        .map(|f| format!("{}:{}: {}", f.file, f.line, f.message))
        .collect()
}

fn assert_finding(messages: &[String], needle: &str) {
    assert!(
        messages.iter().any(|m| m.contains(needle)),
        "no finding contains `{needle}` in {messages:#?}"
    );
}

#[test]
fn clean_fixture_has_no_unsuppressed_findings() {
    let report = run("clean");
    let fatal: Vec<_> = report.unsuppressed().collect();
    assert!(fatal.is_empty(), "unexpected findings: {fatal:#?}");
    // The poisoning blanket and the justified allow still *record* their
    // suppressed findings — LINT.json keeps the audit trail.
    assert!(report.findings.iter().any(|f| f.suppressed.is_some()));
}

#[test]
fn lock_order_catches_inversion_reentry_and_unknown_receivers() {
    let report = run("violating");
    let messages = fatal_messages(&report, "lock-order");
    assert_finding(
        &messages,
        "acquires `state` while holding `events`; the declared order is state < events",
    );
    assert_finding(&messages, "re-entrant acquisition of `state`");
    assert_finding(&messages, "receiver `self.misc` matches no lock class");
    // The fleet fixture inverts the probe/members order.
    assert_finding(
        &messages,
        "acquires `fleet-members` while holding `fleet-probe`",
    );
    assert_eq!(messages.len(), 4, "{messages:#?}");
}

#[test]
fn panic_path_catches_unwraps_macros_and_unjustified_allows() {
    let report = run("violating");
    let messages = fatal_messages(&report, "panic-path");
    assert_finding(&messages, "`unwrap()` on a non-test path");
    assert_finding(&messages, "`panic!(…)` on a non-test path");
    assert_finding(&messages, "carries no justification");
    assert_eq!(messages.len(), 3, "{messages:#?}");
    // The poisoning blanket suppresses — but records — the expect.
    assert!(report.findings.iter().any(|f| f.rule == "panic-path"
        && f.suppressed.is_some()
        && f.message.contains("misc poisoned")));
}

#[test]
fn spec_key_drift_catches_renderer_key_and_equality_drift() {
    let report = run("violating");
    let messages = fatal_messages(&report, "spec-key-drift");
    assert_finding(&messages, "`quiet` is not rendered by to_text");
    assert_finding(
        &messages,
        "`threads` is not normalised away in canonical_key",
    );
    assert_finding(
        &messages,
        "normalises `seed` but lint.toml does not declare it",
    );
    assert_finding(&messages, "`stats` is declared excluded from equality but");
    assert_finding(&messages, "`flag` is not compared by the manual PartialEq");
    assert_finding(&messages, "`stats` is not serialised by to_text");
    assert_eq!(messages.len(), 6, "{messages:#?}");
}

#[test]
fn wire_tokens_catch_parser_renderer_doc_and_usage_drift() {
    let report = run("violating");
    let messages = fatal_messages(&report, "wire-tokens");
    assert_finding(
        &messages,
        "verb `STOP` is not parsed by Request::from_parts",
    );
    assert_finding(
        &messages,
        "parses verb `KILL` that lint.toml does not declare",
    );
    assert_finding(
        &messages,
        "verb `STOP` is missing from the protocol doc table",
    );
    assert_finding(&messages, "error code `bad-spec` is not produced");
    assert_finding(
        &messages,
        "produces code `oops-bad` that lint.toml does not declare",
    );
    assert_finding(
        &messages,
        "literal `\"not-dome\"` matches no declared protocol token",
    );
    assert_finding(
        &messages,
        "verb `STOP` is missing from the README protocol table",
    );
    // A freshly declared verb that nothing implements yet drifts in all
    // three surfaces at once — parser, doc table and README.
    assert_finding(
        &messages,
        "verb `TRACE` is not parsed by Request::from_parts",
    );
    assert_finding(
        &messages,
        "verb `TRACE` is missing from the protocol doc table",
    );
    assert_finding(
        &messages,
        "verb `TRACE` is missing from the README protocol table",
    );
    // A fleet stats key nothing declared — the drift a new FleetLocal
    // field would introduce.
    assert_finding(
        &messages,
        "literal `\"steal-count\"` matches no declared protocol token",
    );
}

#[test]
fn hygiene_catches_missing_attrs_and_dropped_ci_gates() {
    let report = run("violating");
    let messages = fatal_messages(&report, "hygiene");
    assert_finding(
        &messages,
        "missing required crate attribute `#![deny(unsafe_code)]`",
    );
    assert_finding(
        &messages,
        "no longer contains the gate `cargo run -p ctori-lint -- --check`",
    );
    assert_eq!(messages.len(), 2, "{messages:#?}");
}

#[test]
fn the_real_workspace_configuration_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg = std::fs::read_to_string(root.join("lint.toml")).expect("workspace lint.toml");
    let report = check(&root, &cfg).expect("workspace config parses");
    let fatal: Vec<_> = report.unsuppressed().collect();
    assert!(fatal.is_empty(), "workspace lint findings: {fatal:#?}");
    // Sanity: the run actually covered the executor and the protocol.
    assert!(report.checked_files > 10);
}
