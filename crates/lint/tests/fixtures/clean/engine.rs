//! Lock-order and panic-path fixture: every shape here is legal.

use std::sync::{Mutex, MutexGuard};

struct Pool {
    state: Mutex<u64>,
    events: Mutex<Vec<u64>>,
}

impl Pool {
    fn lock(&self) -> MutexGuard<'_, u64> {
        self.state.lock().expect("pool poisoned")
    }

    fn step(&self) {
        let mut state = self.state.lock().expect("pool poisoned");
        {
            // Nested acquisition in the declared order, released by
            // scope exit.
            let mut events = self.events.lock().expect("event log poisoned");
            events.push(*state);
        }
        *state += 1;
        drop(state);
        // Re-acquisition through the helper after an explicit drop.
        let state = self.lock();
        push_event(*state);
    }
}

fn push_event(value: u64) {
    let log = Pool {
        state: Mutex::new(value),
        events: Mutex::new(Vec::new()),
    };
    let mut events = log.events.lock().expect("event log poisoned");
    events.push(value);
}

fn answer() -> u64 {
    // lint: allow(panic) fixture: the literal always parses
    "42".parse().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_unwraps_freely() {
        assert_eq!(super::answer(), "42".parse::<u64>().unwrap());
    }
}
