//! Wire-token fixture client: every hyphenated literal is declared.

pub fn classify(code: &str) -> &'static str {
    match code {
        "io" => "retry",
        "bad-spec" => "fatal",
        "x-trace" => "ignore",
        _ => "unknown",
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_literals_are_exempt() {
        assert_eq!(super::classify("not-a-code"), "unknown");
    }
}
