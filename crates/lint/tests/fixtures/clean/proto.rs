//! Wire-token fixture protocol.
//!
//! | verb | meaning  |
//! |------|----------|
//! | PING | liveness |
//! | STOP | drain    |

pub enum Request {
    Ping,
    Stop,
}

impl Request {
    pub fn from_parts(verb: &str) -> Result<Request, String> {
        match verb {
            "PING" => Ok(Request::Ping),
            "STOP" => Ok(Request::Stop),
            other => Err(format!("unknown verb {other}")),
        }
    }

    pub fn wire(&self) -> String {
        match self {
            Request::Ping => "PING\n".into(),
            Request::Stop => "STOP\n".into(),
        }
    }
}

pub struct Response;

impl Response {
    pub fn from_error(kind: u8) -> String {
        match kind {
            0 => "io".into(),
            _ => "bad-spec".into(),
        }
    }
}
