//! Spec-key fixture: the renderers, the key and the manual equality all
//! agree with the declared exclusions.

#[derive(Clone)]
pub struct EngineOptions {
    pub seed: u64,
    pub threads: usize,
}

impl EngineOptions {
    pub fn to_text(&self) -> String {
        format!("seed={} threads={}", self.seed, self.threads)
    }
}

pub struct RunSpec {
    pub topology: String,
    pub options: EngineOptions,
}

impl RunSpec {
    pub fn text_with_options(&self, options: &EngineOptions) -> String {
        format!("{}\n{}", self.topology, options.to_text())
    }

    pub fn canonical_key(&self) -> String {
        let mut options = self.options.clone();
        options.threads = 0;
        self.text_with_options(&options)
    }
}

pub struct RunOutcome {
    pub rounds: u64,
    pub stats: Vec<u64>,
}

impl PartialEq for RunOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.rounds == other.rounds
    }
}

impl RunOutcome {
    pub fn to_text(&self) -> String {
        format!("rounds={} stats={:?}", self.rounds, self.stats)
    }
}
