//! A miniature fleet shard: the member lock and the probe handle are
//! never nested, and every wire-shaped literal it emits is declared.

use std::sync::Mutex;

struct Fleet {
    members: Mutex<Vec<String>>,
    probe: Mutex<Option<u64>>,
}

impl Fleet {
    fn to_text(&self) -> String {
        let members = self.members.lock().expect("fleet members poisoned");
        format!("jobs-routed {}\n", members.len())
    }

    fn stop(&self) {
        let mut probe = self.probe.lock().expect("fleet probe poisoned");
        probe.take();
    }
}
