//! Hygiene fixture facade crate.
#![deny(unsafe_code)]
