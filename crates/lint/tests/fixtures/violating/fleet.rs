//! Fleet-flavoured violations: a probe→members lock inversion and an
//! undeclared wire-shaped stats key.

use std::sync::Mutex;

struct Fleet {
    members: Mutex<Vec<String>>,
    probe: Mutex<Option<u64>>,
}

impl Fleet {
    fn inverted(&self) {
        let probe = self.probe.lock().expect("fleet probe poisoned");
        let members = self.members.lock().expect("fleet members poisoned");
        drop(members);
        drop(probe);
    }

    fn leaky_key(&self) -> &'static str {
        "steal-count"
    }
}
