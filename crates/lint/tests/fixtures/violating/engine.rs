//! Lock-order and panic-path violations, one per function.

use std::sync::Mutex;

struct Pool {
    state: Mutex<u64>,
    events: Mutex<Vec<u64>>,
    misc: Mutex<u64>,
}

impl Pool {
    fn backwards(&self) {
        let events = self.events.lock().expect("event log poisoned");
        let state = self.state.lock().expect("pool poisoned");
        drop(state);
        drop(events);
    }

    fn twice(&self) {
        let first = self.state.lock().expect("pool poisoned");
        let second = self.state.lock().expect("pool poisoned");
        drop(second);
        drop(first);
    }

    fn mystery(&self) {
        let misc = self.misc.lock().expect("misc poisoned");
        drop(misc);
    }

    fn crashy(&self) -> u64 {
        let value: Option<u64> = None;
        value.unwrap()
    }

    fn unfinished(&self) {
        panic!("not yet");
    }

    fn weakly_excused(&self) -> u64 {
        // lint: allow(panic)
        "7".parse().unwrap()
    }
}
