//! Wire-token violation: a drifted spelling on a non-test path.

pub fn classify(code: &str) -> &'static str {
    match code {
        "io" => "retry",
        "not-dome" => "fatal",
        _ => "unknown",
    }
}
