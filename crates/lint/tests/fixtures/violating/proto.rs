//! Wire-token violations: the parser, renderer, doc table and error
//! mapping all disagree with the declared sets.
//!
//! | verb | meaning  |
//! |------|----------|
//! | PING | liveness |

pub enum Request {
    Ping,
    Kill,
}

impl Request {
    pub fn from_parts(verb: &str) -> Result<Request, String> {
        match verb {
            "PING" => Ok(Request::Ping),
            "KILL" => Ok(Request::Kill),
            other => Err(format!("unknown verb {other}")),
        }
    }

    pub fn wire(&self) -> String {
        match self {
            Request::Ping => "PING\n".into(),
            Request::Kill => "KILL\n".into(),
        }
    }
}

pub struct Response;

impl Response {
    pub fn from_error(kind: u8) -> String {
        match kind {
            0 => "io".into(),
            _ => "oops-bad".into(),
        }
    }
}
