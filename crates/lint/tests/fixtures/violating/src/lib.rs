//! Hygiene violation: the safety header is missing.
