//! Spec-key drift, every class at once: an unrendered option, a
//! mis-normalised key, and equality out of sync with the exclusions.

#[derive(Clone)]
pub struct EngineOptions {
    pub seed: u64,
    pub threads: usize,
    pub quiet: bool,
}

impl EngineOptions {
    pub fn to_text(&self) -> String {
        format!("seed={} threads={}", self.seed, self.threads)
    }
}

pub struct RunSpec {
    pub topology: String,
    pub options: EngineOptions,
}

impl RunSpec {
    pub fn text_with_options(&self, options: &EngineOptions) -> String {
        format!("{}\n{}", self.topology, options.to_text())
    }

    pub fn canonical_key(&self) -> String {
        let mut options = self.options.clone();
        options.seed = 0;
        self.text_with_options(&options)
    }
}

pub struct RunOutcome {
    pub rounds: u64,
    pub flag: bool,
    pub stats: Vec<u64>,
}

impl PartialEq for RunOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.rounds == other.rounds && self.stats == other.stats
    }
}

impl RunOutcome {
    pub fn to_text(&self) -> String {
        format!("rounds={}", self.rounds)
    }
}
