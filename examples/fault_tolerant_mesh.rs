//! Fault propagation in a processor mesh — the dynamo literature's original
//! motivation (catastrophic fault patterns in VLSI arrays, Peleg's dynamic
//! monopolies).
//!
//! The example treats colour `k` as the *faulty* state of a processor in an
//! `m × n` toroidal mesh and asks three questions the paper answers:
//!
//! 1. how many well-placed faulty processors can corrupt the whole mesh
//!    (the Theorem-1/2 minimum dynamo);
//! 2. how long the corruption takes (Theorem 7);
//! 3. how much harder corruption is under the tie-neutral SMP rule than
//!    under the classical prefer-black majority of Flocchini et al.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fault_tolerant_mesh
//! ```

use colored_tori::coloring::random::random_with_seed_count;
use colored_tori::dynamo::verify_dynamo_with_rule;
use colored_tori::prelude::*;
use colored_tori::protocols::ReverseSimpleMajority;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let faulty = Color::new(1);
    println!("fault propagation in toroidal processor meshes (faulty colour = {faulty})\n");

    // 1 & 2: minimum catastrophic fault patterns and their propagation time.
    println!(
        "{:<12} {:>18} {:>12} {:>18} {:>14}",
        "mesh", "min faulty (m+n-2)", "achieved", "predicted rounds", "measured"
    );
    for (m, n) in [(9usize, 9usize), (12, 12), (15, 15), (21, 21)] {
        let built = theorem2_dynamo(m, n, faulty).expect("construction");
        let report = verify_dynamo(built.torus(), built.coloring(), faulty);
        println!(
            "{:<12} {:>18} {:>12} {:>18} {:>14}",
            format!("{m}x{n}"),
            lower_bound(TorusKind::ToroidalMesh, m, n),
            built.seed_size(),
            theorem7_rounds(m, n),
            report.rounds
        );
    }

    // 3: random faults under SMP vs prefer-black on a bi-coloured mesh.
    println!("\nrandom faults: fraction of trials in which the whole 12x12 mesh becomes faulty");
    println!(
        "{:<28} {:>10} {:>14} {:>14}",
        "initial faulty fraction", "trials", "SMP rule", "prefer-black"
    );
    let torus = toroidal_mesh(12, 12);
    let palette = Palette::bicolor();
    let mut rng = StdRng::seed_from_u64(7);
    let trials = 200;
    for fraction in [0.30f64, 0.45, 0.55, 0.65, 0.80] {
        let faults = ((12 * 12) as f64 * fraction).round() as usize;
        let mut smp_wins = 0usize;
        let mut pb_wins = 0usize;
        for _ in 0..trials {
            let coloring = random_with_seed_count(&torus, &palette, Color::BLACK, faults, &mut rng);
            if verify_dynamo(&torus, &coloring, Color::BLACK).is_dynamo() {
                smp_wins += 1;
            }
            if verify_dynamo_with_rule(
                &torus,
                &coloring,
                Color::BLACK,
                ReverseSimpleMajority::prefer_black(),
            )
            .is_dynamo()
            {
                pb_wins += 1;
            }
        }
        println!(
            "{:<28} {:>10} {:>13.1}% {:>13.1}%",
            format!("{:.0}%", fraction * 100.0),
            trials,
            100.0 * smp_wins as f64 / trials as f64,
            100.0 * pb_wins as f64 / trials as f64,
        );
    }
    println!(
        "\nThe prefer-black tie-break corrupts the mesh from far smaller random fault densities \
         than the paper's tie-neutral SMP rule — exactly the robustness gap the paper's \
         introduction attributes to removing the colour priority."
    );
}
