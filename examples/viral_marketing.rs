//! Viral marketing on a synthetic social network — the scenario that
//! motivates the paper's introduction and its future-work section.
//!
//! A scale-free (Barabási–Albert) network stands in for the "influential
//! network"; seeds are the initially-convinced customers.  The example
//! compares three seed-selection strategies under (a) the classical linear
//! threshold model used by target set selection and (b) the paper's
//! SMP-Protocol run on the same graph.
//!
//! The SMP runs showcase the execution API: the network is a
//! [`TopologySpec`] (generator + RNG seed, fully reproducible), every
//! (budget × strategy) cell is a [`RunSpec`], and the whole campaign grid
//! is **one** [`Executor::submit_sweep`] batch on the engine's persistent
//! worker pool — the same call that would run it on a `ctori-serve`
//! process if a [`colored_tori::service::RemoteExecutor`] were passed
//! instead.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example viral_marketing
//! ```

use colored_tori::prelude::*;
use colored_tori::tss::diffusion::{simple_majority_thresholds, spread};
use colored_tori::tss::selection::{greedy_seeds, highest_degree_seeds, random_seeds};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let customers = 2_000;
    // The network as declarative data: generator + parameters + RNG seed.
    let network_spec = TopologySpec::BarabasiAlbert {
        nodes: customers,
        edges_per_vertex: 3,
        rng_seed: 2011,
    };
    // The selection heuristics need the concrete graph; the specs keep
    // only the (reproducible) description.
    let network = match network_spec.build() {
        colored_tori::engine::BuiltTopology::Graph(g) => g,
        other => panic!("expected a graph topology, got {other:?}"),
    };
    let thresholds = simple_majority_thresholds(&network);
    let k = Color::new(1);
    let other_colors: Vec<Color> = (2..=9).map(Color::new).collect();
    let mut rng = StdRng::seed_from_u64(2011);

    println!(
        "viral marketing on a scale-free network with {customers} customers \
         ({} word-of-mouth links)\n",
        colored_tori::topology::Topology::edge_count_total(&network)
    );

    // One RunSpec per (budget × strategy) cell: seeds get colour k, every
    // other customer a round-robin colour from the rest of the palette
    // (pairwise-different neighbours make SMP behave like threshold-2
    // growth, mirroring the torus constructions).
    let smp_seed = |seeds: &[NodeId]| -> SeedSpec {
        let mut cells = vec![Color::UNSET; customers];
        for s in seeds {
            cells[s.index()] = k;
        }
        let mut idx = 0usize;
        for cell in cells.iter_mut() {
            if cell.is_unset() {
                *cell = other_colors[idx % other_colors.len()];
                idx += 1;
            }
        }
        SeedSpec::Explicit(colored_tori::coloring::Coloring::from_cells(
            1, customers, cells,
        ))
    };

    let mut labels: Vec<(usize, &str, usize)> = Vec::new(); // budget, strategy, lt reach
    let mut grid: Vec<RunSpec> = Vec::new();
    for budget in [20usize, 60, 150] {
        let strategies: Vec<(&str, Vec<NodeId>)> = vec![
            ("highest degree", highest_degree_seeds(&network, budget)),
            (
                "greedy (marginal gain)",
                greedy_seeds(&network, &thresholds, budget.min(40)),
            ),
            ("random", random_seeds(&network, budget, &mut rng)),
        ];
        for (name, seeds) in strategies {
            let lt = spread(&network, &thresholds, &seeds);
            labels.push((seeds.len(), name, lt.activated_count));
            grid.push(RunSpec::new(
                network_spec.clone(),
                RuleSpec::parse("smp").expect("registry rule"),
                smp_seed(&seeds),
            ));
        }
    }

    // The entire campaign grid as one batch on the persistent worker
    // pool, through the backend-agnostic Executor surface.
    let pool = LocalExecutor::start(LocalExecutorConfig::default());
    let handles = pool
        .submit_sweep(&grid, SubmitOptions::default())
        .expect("campaign grid fits the submission queue");
    let outcomes: Vec<RunOutcome> = handles
        .into_iter()
        .map(|mut handle| (*handle.wait().expect("campaign cell finishes")).clone())
        .collect();
    pool.drain();

    println!(
        "{:<22} {:>8} {:>22} {:>22}",
        "strategy", "seeds", "threshold-model reach", "SMP-Protocol reach"
    );
    for ((seeds, name, lt_reach), outcome) in labels.iter().zip(&outcomes) {
        let smp_reach = outcome.final_count(k);
        println!(
            "{:<22} {:>8} {:>15} ({:>4.1}%) {:>15} ({:>4.1}%)",
            name,
            seeds,
            lt_reach,
            100.0 * *lt_reach as f64 / customers as f64,
            smp_reach,
            100.0 * smp_reach as f64 / customers as f64,
        );
        if *name == "random" {
            println!();
        }
    }

    println!(
        "Hubs dominate random seeding, and the tie-neutral SMP-Protocol spreads more slowly than \
         the irreversible threshold model — the qualitative picture the paper's introduction \
         paints for word-of-mouth diffusion.  Every SMP cell above ran as one spec of a single \
         Executor::submit_sweep batch on the engine's worker pool."
    );
}
