//! Viral marketing on a synthetic social network — the scenario that
//! motivates the paper's introduction and its future-work section.
//!
//! A scale-free (Barabási–Albert) network stands in for the "influential
//! network"; seeds are the initially-convinced customers.  The example
//! compares three seed-selection strategies under (a) the classical linear
//! threshold model used by target set selection and (b) the paper's
//! SMP-Protocol run on the same graph.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example viral_marketing
//! ```

use colored_tori::prelude::*;
use colored_tori::tss::diffusion::{simple_majority_thresholds, smp_on_graph, spread};
use colored_tori::tss::generators::barabasi_albert;
use colored_tori::tss::selection::{greedy_seeds, highest_degree_seeds, random_seeds};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2011);
    let customers = 2_000;
    let network = barabasi_albert(customers, 3, &mut rng);
    let thresholds = simple_majority_thresholds(&network);
    let k = Color::new(1);
    let other_colors: Vec<Color> = (2..=9).map(Color::new).collect();

    println!(
        "viral marketing on a scale-free network with {customers} customers \
         ({} word-of-mouth links)\n",
        colored_tori::topology::Topology::edge_count_total(&network)
    );
    println!(
        "{:<22} {:>8} {:>22} {:>22}",
        "strategy", "seeds", "threshold-model reach", "SMP-Protocol reach"
    );

    for budget in [20usize, 60, 150] {
        let strategies: Vec<(&str, Vec<NodeId>)> = vec![
            ("highest degree", highest_degree_seeds(&network, budget)),
            (
                "greedy (marginal gain)",
                greedy_seeds(&network, &thresholds, budget.min(40)),
            ),
            ("random", random_seeds(&network, budget, &mut rng)),
        ];
        for (name, seeds) in strategies {
            let lt = spread(&network, &thresholds, &seeds);
            let (smp_reach, _rounds, _mono) = smp_on_graph(&network, &seeds, k, &other_colors);
            println!(
                "{:<22} {:>8} {:>15} ({:>4.1}%) {:>15} ({:>4.1}%)",
                name,
                seeds.len(),
                lt.activated_count,
                100.0 * lt.activated_count as f64 / customers as f64,
                smp_reach,
                100.0 * smp_reach as f64 / customers as f64,
            );
        }
        println!();
    }

    println!(
        "Hubs dominate random seeding, and the tie-neutral SMP-Protocol spreads more slowly than \
         the irreversible threshold model — the qualitative picture the paper's introduction \
         paints for word-of-mouth diffusion."
    );
}
