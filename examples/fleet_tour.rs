//! Three backends, one executor: a tour of the fleet layer.
//!
//! Spawns three embedded `ctori-serve` servers (or connects to external
//! ones when `CTORI_FLEET_ADDRS` lists comma-separated addresses — the
//! CI smoke job does that with three real processes), drives a sweep
//! through [`FleetExecutor`], then resubmits one spec to show that
//! consistent-hash routing sends it back to the *same* backend where it
//! is served from that backend's result cache.  Per-backend routing and
//! steal counters are printed from the fleet's own stats.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fleet_tour
//! ```

use colored_tori::prelude::*;
use colored_tori::service::{SchedulerConfig, Server, ServiceConfig};
use std::error::Error;

/// The demo grid: nine runs across three torus kinds and three seeds.
fn grid() -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for kind in [
        TorusKind::ToroidalMesh,
        TorusKind::TorusCordalis,
        TorusKind::TorusSerpentinus,
    ] {
        for rng_seed in [7u64, 11, 13] {
            specs.push(RunSpec::new(
                TopologySpec::torus(kind, 24, 24),
                RuleSpec::parse("smp").expect("registry rule"),
                SeedSpec::Density {
                    color: Color::new(1),
                    palette: 3,
                    fraction: 0.45,
                    rng_seed,
                },
            ));
        }
    }
    specs
}

fn main() -> Result<(), Box<dyn Error>> {
    // Assemble the fleet: external processes when CTORI_FLEET_ADDRS is
    // set, three embedded servers otherwise.
    let external = std::env::var("CTORI_FLEET_ADDRS").ok();
    let mut server_threads = Vec::new();
    let addrs: Vec<String> = match &external {
        Some(list) => {
            let addrs: Vec<String> = list
                .split(',')
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect();
            println!("connecting to {} external backends: {addrs:?}", addrs.len());
            addrs
        }
        None => {
            let mut addrs = Vec::new();
            for _ in 0..3 {
                let server = Server::bind(ServiceConfig {
                    addr: "127.0.0.1:0".into(),
                    scheduler: SchedulerConfig {
                        workers: 2,
                        ..SchedulerConfig::default()
                    },
                })?;
                let addr = server.local_addr()?.to_string();
                println!("embedded ctori-serve listening on {addr}");
                addrs.push(addr);
                // Deliberate spawn: each embedded server is joined after
                // the shutdown requests below.
                #[allow(clippy::disallowed_methods)]
                server_threads.push(std::thread::spawn(move || server.serve()));
            }
            addrs
        }
    };

    let fleet = FleetExecutor::connect(FleetConfig::new(addrs.iter().cloned()))?;
    println!(
        "fleet up: {} backends, all healthy\n",
        fleet.healthy_backends()
    );

    // 1. Fan a sweep out across the fleet.
    let specs = grid();
    let handles = fleet.submit_sweep(&specs, SubmitOptions::default())?;
    let mut outcomes = Vec::new();
    for mut handle in handles {
        let label = handle.label();
        let outcome = handle.wait()?;
        println!(
            "  [{label}] -> {:?} after {} rounds",
            outcome.termination, outcome.rounds
        );
        outcomes.push(outcome);
    }
    assert_eq!(outcomes.len(), specs.len(), "every grid point completed");

    // 2. Submit the same spec twice through the ring: with stable
    //    membership both submissions land on the same backend, so the
    //    second is served from that backend's result cache.
    let mut first = fleet.submit(&specs[0], SubmitOptions::default())?;
    let first_outcome = first.wait()?;
    let mut again = fleet.submit(&specs[0], SubmitOptions::default())?;
    let repeat = again.wait()?;
    assert_eq!(
        repeat, first_outcome,
        "a resubmitted spec yields the identical outcome"
    );
    assert_eq!(
        repeat, outcomes[0],
        "ring-routed and sweep-routed runs agree"
    );

    // 3. Fleet-wide observability.
    let stats = fleet.stats();
    println!("\nper-backend routing:");
    for (row, routed) in stats.per_backend.iter().zip(&stats.local.jobs_routed) {
        let (hits, done) = row
            .stats
            .as_ref()
            .map(|s| (s.cache.hits, s.done))
            .unwrap_or((0, 0));
        println!(
            "  {} healthy={} routed={routed} done={done} cache-hits={hits}",
            row.addr, row.healthy
        );
    }
    println!(
        "fleet: reroutes={} steals={} probe-failures={} evictions={} readds={}",
        stats.local.reroutes,
        stats.local.steals,
        stats.local.probe_failures,
        stats.local.evictions,
        stats.local.readds
    );
    let total_routed: u64 = stats.local.jobs_routed.iter().sum();
    assert!(
        total_routed >= (specs.len() + 2) as u64,
        "every submission was routed somewhere"
    );
    assert!(
        stats.aggregate.cache.hits >= 1,
        "the resubmitted spec must be a cache hit somewhere in the fleet"
    );

    let metrics = fleet.metrics();
    println!(
        "merged telemetry: fleet.backends.healthy={:?} server.connections={:?}",
        metrics.gauge("fleet.backends.healthy"),
        metrics.counter("server.connections")
    );

    fleet.drain();

    // Embedded servers are ours to stop; external ones are shared
    // infrastructure and are only shut down when the caller says so
    // (the CI smoke job owns its processes and sets the variable).
    let shutdown_external = std::env::var("CTORI_FLEET_SHUTDOWN").is_ok_and(|v| v == "1");
    if external.is_none() || shutdown_external {
        for addr in &addrs {
            colored_tori::service::ServiceClient::connect(addr.as_str())?.shutdown()?;
        }
    }
    for thread in server_threads {
        thread.join().expect("server thread panicked")?;
    }
    println!("\nfleet tour complete");
    Ok(())
}
