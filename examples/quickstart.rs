//! Quickstart: build the paper's minimum-size monotone dynamo on each of
//! the three torus topologies, verify it by simulation, and print the
//! initial configuration together with its recolouring-time matrix.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use colored_tori::coloring::render_coloring;
use colored_tori::engine::RecoloringTimes;
use colored_tori::prelude::*;

fn main() {
    let k = Color::new(1);
    let (m, n) = (9, 9);

    println!("Dynamic Monopolies in Colored Tori — quickstart ({m}x{n} tori, target colour {k})\n");

    for kind in TorusKind::ALL {
        let bound = lower_bound(kind, m, n);
        let built = minimum_dynamo(kind, m, n, k)
            .unwrap_or_else(|e| panic!("construction failed on the {kind}: {e}"));
        let report = verify_dynamo(built.torus(), built.coloring(), k);

        println!("== {kind} ==");
        println!(
            "  lower bound {bound}, seed size {}, colours used {}, filler: {}",
            built.seed_size(),
            built.colors_used(),
            built.filler()
        );
        println!(
            "  monotone dynamo: {}, rounds to monochromatic: {}",
            report.is_monotone_dynamo(),
            report.rounds
        );
        println!("  initial configuration (colour {k} is the spreading colour):");
        for line in render_coloring(built.coloring()).lines() {
            println!("    {line}");
        }
        let times =
            RecoloringTimes::from_report(m, n, &to_run_report(&report)).expect("times tracked");
        println!("  recolouring times (rounds until each vertex adopts {k}):");
        for line in times.render().lines() {
            println!("    {line}");
        }
        println!();
    }
}

/// Adapts a [`DynamoReport`] into the engine's run report shape so the
/// recolouring-time matrix helper can consume it.
fn to_run_report(report: &DynamoReport) -> colored_tori::engine::RunReport {
    colored_tori::engine::RunReport {
        termination: report.termination,
        rounds: report.rounds,
        recoloring_times: Some(report.recoloring_times.clone()),
        monotone: Some(report.monotone),
        final_target_count: None,
    }
}
