//! Quickstart: the declarative `RunSpec` / `Runner` execution API.
//!
//! Builds the paper's minimum-size monotone dynamo on each of the three
//! torus topologies, describes each verification as a plain-data
//! [`RunSpec`], executes the whole batch with one [`Runner::sweep`] call,
//! and prints the initial configuration, its recolouring-time matrix, and
//! the serialisable text form of one scenario (which parses back to an
//! identical spec).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use colored_tori::coloring::render_coloring;
use colored_tori::engine::RecoloringTimes;
use colored_tori::prelude::*;

fn main() {
    let k = Color::new(1);
    let (m, n) = (9, 9);

    println!("Dynamic Monopolies in Colored Tori — quickstart ({m}x{n} tori, target colour {k})\n");

    // 1. Describe one scenario per torus kind: the Theorem-2/4/6
    //    construction, to be verified as a monotone dynamo.
    let constructions: Vec<_> = TorusKind::ALL
        .into_iter()
        .map(|kind| {
            let built = minimum_dynamo(kind, m, n, k)
                .unwrap_or_else(|e| panic!("construction failed on the {kind}: {e}"));
            let spec = RunSpec::new(
                TopologySpec::torus(kind, m, n),
                RuleSpec::parse("smp").expect("registry rule"),
                SeedSpec::Explicit(built.coloring().clone()),
            )
            .for_dynamo(k);
            (kind, built, spec)
        })
        .collect();

    // 2. Execute the whole batch in parallel through the Runner.
    let runner = Runner::new();
    // `sweep` takes any owned iterable now — no intermediate Vec.
    let outcomes = runner.sweep(constructions.iter().map(|(_, _, s)| s.clone()));

    for ((kind, built, _), outcome) in constructions.iter().zip(&outcomes) {
        let bound = lower_bound(*kind, m, n);
        println!("== {kind} ==");
        println!(
            "  lower bound {bound}, seed size {}, colours used {}, filler: {}",
            built.seed_size(),
            built.colors_used(),
            built.filler()
        );
        println!(
            "  monotone dynamo: {}, rounds to monochromatic: {}, packed lane: {}, plane lane: {}",
            outcome.reached_monochromatic(k) && outcome.monotone == Some(true),
            outcome.rounds,
            outcome.used_packed_lane,
            outcome.used_plane_lane,
        );
        println!("  initial configuration (colour {k} is the spreading colour):");
        for line in render_coloring(built.coloring()).lines() {
            println!("    {line}");
        }
        let times = RecoloringTimes::from_report(m, n, &outcome.report()).expect("times tracked");
        println!("  recolouring times (rounds until each vertex adopts {k}):");
        for line in times.render().lines() {
            println!("    {line}");
        }
        println!();
    }

    // 3. Every spec is serialisable: the text form parses back to an
    //    identical scenario, which is what a batch/service layer will
    //    accept.
    let (_, _, spec) = &constructions[0];
    let text = spec.to_text();
    println!("the first scenario as text (RunSpec::to_text):\n");
    for line in text.lines().take(4) {
        println!("    {line}");
    }
    println!("    ... ({} more grid lines)\n", m);
    let reparsed = RunSpec::from_text(&text).expect("round trip");
    assert_eq!(&reparsed, spec);
    let replay = runner.execute(&reparsed);
    assert_eq!(replay.rounds, outcomes[0].rounds);
    println!(
        "parsed it back and re-executed: identical outcome ({} rounds) — \
         declarative scenarios are reproducible artefacts.",
        replay.rounds
    );
}
