//! Exhaustive minimum-dynamo search on small tori.
//!
//! For each small torus the example searches every seed placement and every
//! colouring of the remaining vertices (with Lemma-1/Lemma-2 pruning) for
//! the smallest monotone dynamo, and compares the result with the paper's
//! lower bounds — including the 3x3 serpentinus anomaly where the chained
//! wrap-around creates triangles and a dynamo one below the bound exists.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example minimum_dynamo_search
//! ```

use colored_tori::coloring::render_coloring;
use colored_tori::dynamo::search::{search_minimum_monotone_dynamo, SearchConfig, SearchOutcome};
use colored_tori::prelude::*;

fn main() {
    let k = Color::new(1);
    let palette = Palette::new(4);

    println!("exhaustive search for minimum monotone dynamos (palette of 4 colours)\n");
    println!(
        "{:<26} {:>12} {:>14} {:>10}",
        "torus", "paper bound", "search result", "agrees"
    );

    let cases = [
        (TorusKind::ToroidalMesh, 3usize, 3usize),
        (TorusKind::ToroidalMesh, 3, 4),
        (TorusKind::TorusCordalis, 3, 3),
        (TorusKind::TorusCordalis, 3, 4),
        (TorusKind::TorusSerpentinus, 4, 3),
        (TorusKind::TorusSerpentinus, 3, 3),
    ];

    let mut witnesses: Vec<(String, Coloring)> = Vec::new();
    for (kind, m, n) in cases {
        let torus = Torus::new(kind, m, n);
        let bound = lower_bound(kind, m, n);
        let config = SearchConfig::monotone(palette);
        let outcome = search_minimum_monotone_dynamo(&torus, k, &config, bound + 1);
        let (result, agrees) = match &outcome {
            SearchOutcome::Found { size, example, .. } => {
                witnesses.push((format!("{kind} {m}x{n} (size {size})"), example.clone()));
                (size.to_string(), *size == bound)
            }
            SearchOutcome::NoneOfSize(max) => (format!("none <= {max}"), false),
        };
        println!(
            "{:<26} {:>12} {:>14} {:>10}",
            format!("{kind} {m}x{n}"),
            bound,
            result,
            agrees
        );
    }

    println!("\nwitness configurations found by the search:\n");
    for (label, coloring) in witnesses {
        println!("{label}:");
        for line in render_coloring(&coloring).lines() {
            println!("    {line}");
        }
        println!();
    }

    println!(
        "Note the 3x3 torus serpentinus: its chained wrap-around edges form triangles, so a \
         monotone dynamo of size 3 exists — one below the min(m, n) + 1 bound, which holds from \
         triangle-free sizes (m >= 4) onwards."
    );
}
