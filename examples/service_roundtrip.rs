//! End-to-end service round trip on the `Executor` API: submit → live
//! `WATCH` progress → result → cache hit → sweep → graceful shutdown,
//! over real loopback TCP.
//!
//! Everything runs through [`RemoteExecutor`] — the TCP backend of the
//! engine's backend-agnostic execution surface — so this example is also
//! the demo of the `WATCH` verb: while the first job is in flight, the
//! handle polls `WATCH <id> <since-round>` and prints each typed
//! `Progress` event as it streams in.
//!
//! By default the example embeds the whole service in-process on an
//! ephemeral port.  When `CTORI_SERVE_ADDR` is set (the CI smoke job
//! starts a separate `ctori-serve` process and points the example at
//! it), the example connects there instead — and its final `SHUTDOWN`
//! is what drains that server, so a clean exit of *both* processes is
//! the smoke-test assertion.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example service_roundtrip
//! ```

use colored_tori::prelude::*;
use colored_tori::service::{Server, ServiceConfig};
use std::error::Error;

fn scenario(fraction: f64, kind: TorusKind) -> RunSpec {
    RunSpec::new(
        TopologySpec::torus(kind, 32, 32),
        RuleSpec::parse("smp").expect("registry rule"),
        SeedSpec::Density {
            color: Color::new(1),
            palette: 4,
            fraction,
            rng_seed: 2011,
        },
    )
}

fn main() -> Result<(), Box<dyn Error>> {
    // Either connect to an externally started ctori-serve, or embed one.
    let (addr, embedded) = match std::env::var("CTORI_SERVE_ADDR") {
        Ok(addr) => {
            println!("connecting to external ctori-serve at {addr}");
            (addr, None)
        }
        Err(_) => {
            let server = Server::bind(ServiceConfig::default())?;
            let addr = server.local_addr()?.to_string();
            println!("embedded ctori-serve listening on {addr}");
            // Deliberate spawn: the embedded server outlives this scope
            // and is joined after SHUTDOWN below.
            #[allow(clippy::disallowed_methods)]
            let thread = std::thread::spawn(move || server.serve());
            (addr, Some(thread))
        }
    };
    let remote = RemoteExecutor::connect(addr.as_str())?;

    // 1. A long-running job with live progress: threshold-1 growth
    //    floods a 64x64 torus in ~100 rounds; every 8th round streams
    //    back as a typed Progress event through WATCH.
    let growth = RunSpec::new(
        TopologySpec::toroidal_mesh(64, 64),
        RuleSpec::parse("threshold(2,1)").expect("registry rule"),
        SeedSpec::nodes(Color::new(2), Color::new(1), [0usize]),
    )
    .with_options(EngineOptions::default().with_progress_every(8));
    println!(
        "\nsubmitting growth scenario (canonical key {}):",
        growth.canonical_key()
    );
    let mut handle = remote.submit(&growth, SubmitOptions::default())?;
    let mut progress_seen = 0usize;
    let outcome = handle.wait_observed(|event| {
        if let RunEvent::Progress {
            round,
            changed,
            histogram,
        } = event
        {
            progress_seen += 1;
            println!(
                "  WATCH: round {round:>4}  {changed:>5} changed  converted {:>5}",
                histogram.count(Color::new(2))
            );
        }
    })?;
    println!(
        "job {}: {:?} after {} rounds ({progress_seen} live progress events)",
        handle.label(),
        outcome.termination,
        outcome.rounds
    );
    // A warm server (re-run without restart) serves this job from cache,
    // which legitimately publishes no Progress events.
    assert!(
        progress_seen > 0 || handle.status()?.from_cache,
        "WATCH must stream progress for a fresh execution"
    );

    // 2. The identical spec again: served from the content-addressed
    //    cache, byte-identical outcome.
    let mut duplicate = remote.submit(&growth, SubmitOptions::default())?;
    let memoized = duplicate.wait()?;
    assert_eq!(memoized, outcome, "memoized outcome must be identical");
    let status = duplicate.status()?;
    assert!(status.from_cache, "duplicate spec must be a cache hit");
    let stats = remote.stats()?;
    assert!(stats.cache.hits >= 1, "stats must witness the cache hit");
    println!(
        "job {}: served from cache (hits {}, misses {})",
        duplicate.label(),
        stats.cache.hits,
        stats.cache.misses
    );

    // 3. A sweep: one batch submission over kinds × densities, handles
    //    in spec order.
    let grid: Vec<RunSpec> = TorusKind::ALL
        .into_iter()
        .flat_map(|kind| [0.3, 0.6].into_iter().map(move |f| scenario(f, kind)))
        .collect();
    let handles = remote.submit_sweep(&grid, SubmitOptions::default())?;
    println!("\nsweep of {} scenarios queued", grid.len());
    for (spec, mut handle) in grid.iter().zip(handles) {
        let outcome = handle.wait()?;
        let (rows, cols) = spec.topology.grid_dims();
        println!(
            "  job {}: {rows}x{cols} -> {:?} in {} rounds",
            handle.label(),
            outcome.termination,
            outcome.rounds
        );
    }

    let stats = remote.stats()?;
    println!(
        "\nfinal stats: {} done, {} failed, cache {}/{} hits, {} workers",
        stats.done,
        stats.failed,
        stats.cache.hits,
        stats.cache.hits + stats.cache.misses,
        stats.workers
    );
    assert_eq!(stats.failed, 0, "no job may fail in this example");

    // 4. Graceful drain: the server finishes everything and exits.
    remote.shutdown_server()?;
    if let Some(handle) = embedded {
        let final_stats = handle.join().expect("server thread panicked")?;
        assert_eq!(final_stats.queued, 0, "drain leaves no queued jobs");
        println!("embedded server drained cleanly");
    }
    println!("service round trip complete");
    Ok(())
}
