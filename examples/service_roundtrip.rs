//! End-to-end service round trip: submit → result → cache hit → sweep →
//! graceful shutdown, over real loopback TCP.
//!
//! By default the example embeds the whole service in-process on an
//! ephemeral port.  When `CTORI_SERVE_ADDR` is set (the CI smoke job
//! starts a separate `ctori-serve` process and points the example at
//! it), the example connects there instead — and its final `SHUTDOWN`
//! is what drains that server, so a clean exit of *both* processes is
//! the smoke-test assertion.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example service_roundtrip
//! ```

use colored_tori::prelude::*;
use colored_tori::service::{Server, ServiceClient, ServiceConfig};
use std::error::Error;

fn scenario(fraction: f64, kind: TorusKind) -> RunSpec {
    RunSpec::new(
        TopologySpec::torus(kind, 32, 32),
        RuleSpec::parse("smp").expect("registry rule"),
        SeedSpec::Density {
            color: Color::new(1),
            palette: 4,
            fraction,
            rng_seed: 2011,
        },
    )
}

fn main() -> Result<(), Box<dyn Error>> {
    // Either connect to an externally started ctori-serve, or embed one.
    let (addr, embedded) = match std::env::var("CTORI_SERVE_ADDR") {
        Ok(addr) => {
            println!("connecting to external ctori-serve at {addr}");
            (addr, None)
        }
        Err(_) => {
            let server = Server::bind(ServiceConfig::default())?;
            let addr = server.local_addr()?.to_string();
            println!("embedded ctori-serve listening on {addr}");
            (addr, Some(std::thread::spawn(move || server.serve())))
        }
    };
    let mut client = ServiceClient::connect(addr.as_str())?;

    // 1. Submit one scenario as spec text and fetch its outcome.
    let spec = scenario(0.4, TorusKind::ToroidalMesh);
    println!(
        "\nsubmitting (canonical key {}):\n{}",
        spec.canonical_key(),
        spec.to_text()
    );
    let job = client.submit(&spec)?;
    let outcome = client.result(job)?;
    println!(
        "job {job}: {:?} after {} rounds (packed lane: {})",
        outcome.termination, outcome.rounds, outcome.used_packed_lane
    );

    // 2. The identical spec again: served from the content-addressed
    //    cache, byte-identical outcome.
    let duplicate = client.submit(&spec)?;
    let memoized = client.result(duplicate)?;
    assert_eq!(memoized, outcome, "memoized outcome must be identical");
    let status = client.status(duplicate)?;
    assert!(status.from_cache, "duplicate spec must be a cache hit");
    let stats = client.stats()?;
    assert!(stats.cache.hits >= 1, "stats must witness the cache hit");
    println!(
        "job {duplicate}: served from cache (hits {}, misses {})",
        stats.cache.hits, stats.cache.misses
    );

    // 3. A sweep: one batch submission over kinds × densities.
    let grid: Vec<RunSpec> = TorusKind::ALL
        .into_iter()
        .flat_map(|kind| [0.3, 0.6].into_iter().map(move |f| scenario(f, kind)))
        .collect();
    let ids = client.sweep(&grid)?;
    let id_list: Vec<String> = ids.iter().map(ToString::to_string).collect();
    println!(
        "\nsweep of {} scenarios queued as jobs {}",
        grid.len(),
        id_list.join(", ")
    );
    for (spec, id) in grid.iter().zip(&ids) {
        let outcome = client.result(*id)?;
        let (rows, cols) = spec.topology.grid_dims();
        println!(
            "  job {id}: {rows}x{cols} -> {:?} in {} rounds",
            outcome.termination, outcome.rounds
        );
    }

    let stats = client.stats()?;
    println!(
        "\nfinal stats: {} done, {} failed, cache {}/{} hits, {} workers",
        stats.done,
        stats.failed,
        stats.cache.hits,
        stats.cache.hits + stats.cache.misses,
        stats.workers
    );
    assert_eq!(stats.failed, 0, "no job may fail in this example");

    // 4. Graceful drain: the server finishes everything and exits.
    client.shutdown()?;
    if let Some(handle) = embedded {
        let final_stats = handle.join().expect("server thread panicked")?;
        assert_eq!(final_stats.queued, 0, "drain leaves no queued jobs");
        println!("embedded server drained cleanly");
    }
    println!("service round trip complete");
    Ok(())
}
