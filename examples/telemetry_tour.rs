//! A tour of the telemetry layer over the wire: run a job, then pull
//! the server's full metrics exposition (`METRICS`) and the job's
//! lifecycle span ring (`TRACE <id>`) through [`ServiceClient`].
//!
//! By default the example embeds the whole service in-process on an
//! ephemeral port and shuts it down at the end.  When `CTORI_SERVE_ADDR`
//! is set (the CI smoke job points it at a live `ctori-serve` process),
//! the example connects there and leaves the server running — observing
//! shared infrastructure must never kill it.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example telemetry_tour
//! ```

use colored_tori::prelude::*;
use colored_tori::service::{Server, ServiceClient, ServiceConfig};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // Either connect to an externally started ctori-serve, or embed one.
    let (addr, embedded) = match std::env::var("CTORI_SERVE_ADDR") {
        Ok(addr) => {
            println!("connecting to external ctori-serve at {addr}");
            (addr, None)
        }
        Err(_) => {
            let server = Server::bind(ServiceConfig::default())?;
            let addr = server.local_addr()?.to_string();
            println!("embedded ctori-serve listening on {addr}");
            // Deliberate spawn: the embedded server outlives this scope
            // and is joined after SHUTDOWN below.
            #[allow(clippy::disallowed_methods)]
            let thread = std::thread::spawn(move || server.serve());
            (addr, Some(thread))
        }
    };
    let mut client = ServiceClient::connect(addr.as_str())?;

    // A spec salted with the process id, so a warm server (CI re-runs
    // the smoke against one ctori-serve) still executes it fresh — the
    // trace below must show a real claimed→running lifecycle, not a
    // cache hit.
    let salt = std::process::id() as usize % (40 * 40);
    let growth = RunSpec::new(
        TopologySpec::toroidal_mesh(40, 40),
        RuleSpec::parse("threshold(2,1)").expect("registry rule"),
        SeedSpec::nodes(Color::new(2), Color::new(1), [salt]),
    );
    let id = client.submit(&growth)?;
    let outcome = client.result(id)?;
    println!(
        "\njob {id}: {:?} after {} rounds",
        outcome.termination, outcome.rounds
    );

    // TRACE <id>: the job's span ring, one monotone timestamp per
    // lifecycle edge plus sampled per-round progress.
    let trace = client.trace(id)?;
    assert!(trace.is_monotone(), "span timestamps must be monotone");
    let base = trace.spans().first().map(|s| s.at_nanos).unwrap_or(0);
    println!("\nTRACE {id} ({} spans):", trace.len());
    for span in trace.spans() {
        println!(
            "  +{:>9.3} ms  {:?}",
            (span.at_nanos - base) as f64 / 1e6,
            span.kind
        );
    }
    let terminal = trace.terminal().expect("finished job has a terminal span");
    assert_eq!(terminal.kind, SpanKind::Done, "the job finished cleanly");
    let queue_wait = trace.queue_wait_nanos().expect("queued and claimed");
    let run = trace.run_nanos().expect("ran and finished");
    println!(
        "  queue wait {:.3} ms, run time {:.3} ms",
        queue_wait as f64 / 1e6,
        run as f64 / 1e6
    );

    // METRICS: the server's whole registry — executor instruments plus
    // the wire layer's per-verb counters — as one parseable exposition.
    let metrics = client.metrics()?;
    println!("\nMETRICS ({} instruments):", metrics.len());
    print!("{}", metrics.to_text());
    assert!(
        metrics.counter("server.requests.SUBMIT").unwrap_or(0) >= 1,
        "the SUBMIT above must be counted"
    );
    assert!(
        metrics.counter("exec.jobs.submitted").unwrap_or(0) >= 1,
        "the executor must have admitted the job"
    );
    let run_hist = metrics
        .histogram("exec.job.run-us")
        .expect("run-time histogram registered");
    assert!(run_hist.count >= 1, "the job's run time must be recorded");
    println!(
        "\njob-latency histogram: {} recorded, p50 {} us, p99 {} us",
        run_hist.count,
        run_hist.quantile(0.5),
        run_hist.quantile(0.99)
    );

    // Shut down only the server we own; an external one keeps serving.
    if let Some(handle) = embedded {
        client.shutdown()?;
        handle.join().expect("server thread panicked")?;
        println!("\nembedded server drained cleanly");
    }
    println!("telemetry tour complete");
    Ok(())
}
