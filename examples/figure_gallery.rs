//! Figure gallery: regenerate all six figures of the paper and print them
//! in a form directly comparable with the published ones.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example figure_gallery
//! ```

use colored_tori::coloring::{render_coloring, render_highlight};
use colored_tori::dynamo::figures;
use colored_tori::prelude::*;

fn main() {
    let k = Color::new(1);

    println!("Figure 1 — a monotone dynamo of black (B) nodes of size m + n - 2 (9x9):\n");
    let (_, _, picture) = figures::figure1(9, 9, k);
    print_indented(&picture);

    println!("Figure 2 — the Theorem-2 four-colour minimum monotone dynamo (9x9):\n");
    match figures::figure2(9, 9, k) {
        Ok(built) => {
            print_indented(&render_coloring(built.coloring()));
            let report = verify_dynamo(built.torus(), built.coloring(), k);
            println!(
                "  seed size {}, colours {}, monotone dynamo: {}, rounds: {}\n",
                built.seed_size(),
                built.colors_used(),
                report.is_monotone_dynamo(),
                report.rounds
            );
        }
        Err(e) => println!("  construction failed: {e}\n"),
    }

    println!("Figure 3 — black nodes that do NOT constitute a dynamo (9x9):\n");
    let (torus, coloring) = figures::figure3(9, 9, k);
    print_indented(&render_highlight(&coloring, k));
    let report = verify_dynamo(&torus, &coloring, k);
    println!(
        "  is a dynamo: {} (termination: {:?})\n",
        report.is_dynamo(),
        report.termination
    );

    println!("Figure 4 — a configuration where no recolouring can arise (9x9):\n");
    let (torus, coloring) = figures::figure4(9, 9, k);
    print_indented(&render_coloring(&coloring));
    let report = verify_dynamo(&torus, &coloring, k);
    println!(
        "  is a dynamo: {} (termination: {:?})\n",
        report.is_dynamo(),
        report.termination
    );

    println!("Figure 5 — recolouring times, 5x5 toroidal mesh seeded with a full cross:\n");
    print_indented(&figures::figure5(5, 5, k).render());

    println!("Figure 6 — recolouring times, 5x5 torus cordalis with the Theorem-4 seed:\n");
    print_indented(&figures::figure6(5, 5, k).render());

    println!(
        "Theorem 7 predicts {} rounds for the 5x5 mesh; Theorem 8 predicts {} rounds for the \
         5x5 cordalis.",
        theorem7_rounds(5, 5),
        theorem8_rounds(5, 5)
    );
}

fn print_indented(text: &str) {
    for line in text.lines() {
        println!("    {line}");
    }
    println!();
}
