//! One driver function, two backends: the point of the `Executor` API.
//!
//! `drive()` below submits a sweep, streams typed progress events, and
//! collects outcomes — written once against `&dyn Executor`.  `main`
//! runs it twice: over the in-engine [`LocalExecutor`] worker pool, and
//! over a `ctori-serve` TCP server through [`RemoteExecutor`] (embedded
//! on an ephemeral port, or an external process when `CTORI_SERVE_ADDR`
//! is set — the CI smoke job does the latter).  The outcomes must be
//! identical, and both backends must surface at least one live
//! `Progress` event — CI asserts on this example's clean exit.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example executor_switch
//! ```

use colored_tori::prelude::*;
use colored_tori::service::{SchedulerConfig, Server, ServiceConfig};
use std::error::Error;

/// The demo grid: one long threshold-growth run (many progress events)
/// plus a pair of quick SMP scenarios.
fn grid() -> Vec<RunSpec> {
    let growth = RunSpec::new(
        TopologySpec::toroidal_mesh(48, 48),
        RuleSpec::parse("threshold(2,1)").expect("registry rule"),
        SeedSpec::nodes(Color::new(2), Color::new(1), [0usize]),
    )
    .with_options(EngineOptions::default().with_progress_every(8));
    let smp = |fraction: f64| {
        RunSpec::new(
            TopologySpec::torus(TorusKind::TorusCordalis, 24, 24),
            RuleSpec::parse("smp").expect("registry rule"),
            SeedSpec::Density {
                color: Color::new(1),
                palette: 4,
                fraction,
                rng_seed: 2011,
            },
        )
    };
    vec![growth, smp(0.35), smp(0.65)]
}

/// The backend-agnostic driver: THIS function never changes when the
/// workload moves from laptop to server.
fn drive(backend: &str, exec: &dyn Executor) -> Result<Vec<RunOutcome>, Box<dyn Error>> {
    println!("== {backend} ==");
    let handles = exec.submit_sweep(&grid(), SubmitOptions::default())?;
    let mut outcomes = Vec::new();
    let mut progress_events = 0usize;
    let mut fresh_jobs = 0usize;
    for mut handle in handles {
        let label = handle.label();
        let outcome = handle.wait_observed(|event| match event {
            RunEvent::Progress {
                round,
                changed,
                histogram,
            } => {
                progress_events += 1;
                if round.is_multiple_of(16) {
                    println!(
                        "  [{label}] round {round}: {changed} changed, leader {:?}",
                        histogram.dominant()
                    );
                }
            }
            other => println!("  [{label}] {}", other.to_text()),
        })?;
        if !handle.status()?.from_cache {
            fresh_jobs += 1;
        }
        println!(
            "  [{label}] -> {:?} after {} rounds",
            outcome.termination, outcome.rounds
        );
        outcomes.push((*outcome).clone());
    }
    // The CI smoke contract: progress genuinely streamed on this backend.
    // Cache-hit jobs never execute and therefore publish no Progress
    // events, so the assert only applies when something actually ran
    // (a warm server serving every job from cache is a legal re-run).
    assert!(
        fresh_jobs == 0 || progress_events > 0,
        "{backend}: at least one Progress event must be observed"
    );
    println!("  ({progress_events} progress events streamed, {fresh_jobs} fresh jobs)\n");
    Ok(outcomes)
}

fn main() -> Result<(), Box<dyn Error>> {
    // Backend 1: the in-engine worker pool.
    let local = LocalExecutor::start(LocalExecutorConfig::default());
    let local_outcomes = drive("LocalExecutor (in-engine worker pool)", &local)?;
    local.drain();

    // Backend 2: a ctori-serve process over TCP.
    let remote_outcomes = match std::env::var("CTORI_SERVE_ADDR") {
        Ok(addr) => {
            println!("connecting to external ctori-serve at {addr}");
            let remote = RemoteExecutor::connect(addr.as_str())?;
            // An external server is shared infrastructure: drive it and
            // detach; shutting it down is its owner's call.
            let outcomes = drive("RemoteExecutor (external ctori-serve)", &remote)?;
            remote.drain();
            outcomes
        }
        Err(_) => {
            let server = Server::bind(ServiceConfig {
                addr: "127.0.0.1:0".into(),
                scheduler: SchedulerConfig::default(),
            })?;
            let addr = server.local_addr()?.to_string();
            println!("embedded ctori-serve listening on {addr}");
            // Deliberate spawn: the embedded server is joined after the
            // shutdown request below.
            #[allow(clippy::disallowed_methods)]
            let thread = std::thread::spawn(move || server.serve());
            let remote = RemoteExecutor::connect(addr.as_str())?;
            let outcomes = drive("RemoteExecutor (embedded ctori-serve)", &remote)?;
            // drain() is a client-side detach on a remote backend;
            // stopping the server we own is the explicit act below.
            remote.drain();
            remote.shutdown_server()?;
            thread.join().expect("server thread panicked")?;
            outcomes
        }
    };

    assert_eq!(
        local_outcomes, remote_outcomes,
        "the same specs must yield identical outcomes on both backends"
    );
    println!(
        "both backends agree on all {} outcomes",
        local_outcomes.len()
    );
    Ok(())
}
