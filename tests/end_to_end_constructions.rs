//! End-to-end integration tests: construction → hypothesis check →
//! simulation → round-count comparison, across all three topologies.

use colored_tori::dynamo::construct::mesh::theorem2_seed_column_row;
use colored_tori::dynamo::figures::ideal_rounds_for_partial;
use colored_tori::dynamo::hypotheses::check_hypotheses;
use colored_tori::prelude::*;

#[test]
fn every_topology_produces_a_verified_minimum_dynamo() {
    let k = Color::new(1);
    for kind in TorusKind::ALL {
        for (m, n) in [(6usize, 6usize), (9, 9), (9, 12), (12, 9)] {
            let built = minimum_dynamo(kind, m, n, k)
                .unwrap_or_else(|e| panic!("{kind} {m}x{n}: construction failed: {e}"));
            assert_eq!(
                built.seed_size(),
                lower_bound(kind, m, n),
                "{kind} {m}x{n}: seed size must equal the lower bound"
            );
            assert!(
                check_hypotheses(built.torus(), built.coloring(), k).is_empty(),
                "{kind} {m}x{n}: theorem hypotheses must hold"
            );
            let report = verify_dynamo(built.torus(), built.coloring(), k);
            assert!(
                report.is_monotone_dynamo(),
                "{kind} {m}x{n}: construction must be a monotone dynamo"
            );
            // The k-population never decreases and ends at m*n.
            assert_eq!(report.recoloring_times.len(), m * n);
            assert!(report.recoloring_times.iter().all(|t| t.is_some()));
        }
    }
}

#[test]
fn mesh_round_counts_track_theorem7_on_square_tori() {
    let k = Color::new(1);
    for s in [6usize, 9, 12, 15] {
        let torus = toroidal_mesh(s, s);
        let predicted = theorem7_rounds(s, s);
        // The full-cross configuration of Figure 5 matches the formula
        // exactly; the Theorem-2 seed may need one extra round for odd s.
        let cross = ColoringBuilder::unset(&torus)
            .row(0, k)
            .column(0, k)
            .build_partial();
        let cross_rounds = ideal_rounds_for_partial(&torus, &cross, k).expect("converges");
        assert_eq!(cross_rounds as i64, predicted, "full cross on {s}x{s}");

        let seed = theorem2_seed_column_row(&torus, k);
        let seed_rounds = ideal_rounds_for_partial(&torus, &seed, k).expect("converges");
        let shift = seed_rounds as i64 - predicted;
        assert!(
            (0..=1).contains(&shift),
            "{s}x{s}: Theorem-2 seed propagation {seed_rounds} vs formula {predicted}"
        );
    }
}

#[test]
fn cordalis_round_counts_match_theorem8_for_odd_rows() {
    let k = Color::new(1);
    for (m, n) in [(5usize, 6usize), (7, 6), (9, 9), (7, 12)] {
        let built = minimum_dynamo(TorusKind::TorusCordalis, m, n, k).unwrap();
        let report = verify_dynamo(built.torus(), built.coloring(), k);
        assert!(report.is_monotone_dynamo());
        let predicted = theorem8_rounds(m, n);
        let delta = report.rounds as i64 - predicted;
        assert!(
            delta.abs() <= 1,
            "cordalis {m}x{n}: measured {} vs predicted {predicted}",
            report.rounds
        );
    }
}

#[test]
fn counterexamples_fail_while_constructions_succeed() {
    let k = Color::new(2);
    let (torus, bad) = colored_tori::dynamo::counterexamples::figure3_configuration(9, 9, k);
    assert!(!verify_dynamo(&torus, &bad, k).is_dynamo());

    let built = theorem2_dynamo(9, 9, k).unwrap();
    assert!(verify_dynamo(built.torus(), built.coloring(), k).is_monotone_dynamo());
}

#[test]
fn facade_simulator_runs_the_paper_protocol() {
    // Drive the engine directly through the facade: a torus that is all k
    // except one small patch converges monotonically.
    let torus = torus_serpentinus(8, 8);
    let k = Color::new(3);
    let coloring = ColoringBuilder::filled(&torus, k)
        .cell(3, 3, Color::new(1))
        .cell(3, 4, Color::new(2))
        .cell(4, 3, Color::new(4))
        .cell(4, 4, Color::new(5))
        .build();
    let mut sim = Simulator::new(&torus, SmpProtocol, coloring);
    let report = sim.run(&RunConfig::for_dynamo(k));
    assert_eq!(report.termination, Termination::Monochromatic(k));
    assert_eq!(report.monotone, Some(true));
}
