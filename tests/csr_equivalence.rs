//! Cross-layer equivalence properties for the shared CSR kernel.
//!
//! The workspace routes every simulation data path — the synchronous
//! engine, the TSS diffusion and the torus topologies — through one
//! `ctori_topology::Adjacency` CSR.  These properties pin the contract
//! together across crate boundaries:
//!
//! * `engine::Simulator` running `ThresholdRule` and `tss::diffusion::spread`
//!   must produce identical activation sets *and* identical per-vertex
//!   activation rounds on the same random graph;
//! * the arithmetically specialised CSR of each `TorusKind` must match both
//!   the generic trait-walk CSR and the trait's own neighbour enumeration.

use colored_tori::engine::{RunConfig, Simulator};
use colored_tori::prelude::*;
use colored_tori::topology::{Adjacency, Graph};
use colored_tori::tss::diffusion::{spread, uniform_thresholds};
use colored_tori::tss::generators::{barabasi_albert, ring_lattice};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

fn torus_kind() -> impl Strategy<Value = TorusKind> {
    prop_oneof![
        Just(TorusKind::ToroidalMesh),
        Just(TorusKind::TorusCordalis),
        Just(TorusKind::TorusSerpentinus),
    ]
}

/// A random graph drawn from one of the TSS generator families.
fn random_graph(family: u8, nodes: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    match family % 3 {
        0 => barabasi_albert(nodes.max(8), 3, &mut rng),
        1 => ring_lattice(nodes.max(8), 2),
        _ => {
            // A sparse random graph plus a spanning path so no vertex is
            // isolated from the seeds by construction.
            let nodes = nodes.max(8);
            let mut g = Graph::with_nodes(nodes);
            for v in 1..nodes {
                g.add_edge(NodeId::new(v - 1), NodeId::new(v));
            }
            for _ in 0..nodes {
                let u = rng.gen_range(0..nodes);
                let v = rng.gen_range(0..nodes);
                if u != v {
                    g.add_edge(NodeId::new(u), NodeId::new(v));
                }
            }
            g
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The engine's monomorphised `ThresholdRule` stepper and the TSS
    /// frontier diffusion are the same process on the same CSR: identical
    /// activation sets and identical activation rounds.
    #[test]
    fn simulator_and_spread_agree(
        family in 0u8..3,
        nodes in 8usize..60,
        seed in any::<u64>(),
        threshold in 1usize..4,
        seed_count in 1usize..6,
    ) {
        let graph = random_graph(family, nodes, seed);
        let n = graph.node_count();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
        let seeds: Vec<NodeId> = (0..seed_count.min(n))
            .map(|_| NodeId::new(rng.gen_range(0..n)))
            .collect();

        // TSS path: linear-threshold frontier diffusion over the CSR.
        let thresholds = uniform_thresholds(&graph, threshold);
        let diffusion = spread(&graph, &thresholds, &seeds);

        // Engine path: the same process as a synchronous local rule.
        let (active, inactive) = (Color::new(2), Color::new(1));
        let mut state = vec![inactive; n];
        for &s in &seeds {
            state[s.index()] = active;
        }
        let rule = colored_tori::protocols::ThresholdRule::new(active, threshold);
        let mut sim = Simulator::from_topology(&graph, rule, state);
        let config = RunConfig {
            track_times_for: Some(active),
            ..RunConfig::default()
        };
        let report = sim.run(&config);

        let sim_active: Vec<usize> = (0..n)
            .filter(|&v| sim.color_of(NodeId::new(v)) == active)
            .collect();
        let spread_active: Vec<usize> = (0..n)
            .filter(|&v| diffusion.activation_round[v].is_some())
            .collect();
        prop_assert_eq!(&sim_active, &spread_active, "activation sets differ");
        prop_assert_eq!(diffusion.activated_count, sim_active.len());

        let times = report.recoloring_times.expect("tracking was enabled");
        for (v, &t) in times.iter().enumerate() {
            prop_assert_eq!(
                t, diffusion.activation_round[v],
                "activation round differs at vertex {}", v
            );
        }
    }

    /// The per-kind arithmetic CSR build, the generic trait-walk CSR build
    /// and the trait's own neighbour enumeration agree on every torus.
    #[test]
    fn csr_matches_trait_adjacency_on_all_torus_kinds(
        kind in torus_kind(),
        m in 2usize..=10,
        n in 2usize..=10,
    ) {
        let torus = Torus::new(kind, m, n);
        let arithmetic = Adjacency::from_torus(&torus);
        let generic = Adjacency::build(&torus);
        prop_assert_eq!(&arithmetic, &generic, "specialised and generic CSR differ");

        let mut scratch = Vec::with_capacity(4);
        for v in 0..torus.node_count() {
            torus.neighbors_into(NodeId::new(v), &mut scratch);
            let via_trait: Vec<u32> = scratch.iter().map(|u| u.index() as u32).collect();
            prop_assert_eq!(
                arithmetic.neighbors_raw(v), &via_trait[..],
                "CSR row differs from trait walk at vertex {} on {}", v, torus
            );
            prop_assert_eq!(arithmetic.degree_of(v), 4);
        }
        prop_assert_eq!(arithmetic.entry_count(), 4 * torus.node_count());
    }

    /// `Topology::degree` and `edge_count_total` (derived from the
    /// non-allocating walk) agree with the CSR's stored offsets.
    #[test]
    fn degree_defaults_agree_with_csr(kind in torus_kind(), m in 2usize..=8, n in 2usize..=8) {
        let torus = Torus::new(kind, m, n);
        let csr = Adjacency::from_torus(&torus);
        for v in 0..torus.node_count() {
            prop_assert_eq!(torus.degree(NodeId::new(v)), csr.degree_of(v));
        }
        prop_assert_eq!(torus.edge_count_total(), csr.entry_count() / 2);
        prop_assert_eq!(csr.edge_count_total(), csr.entry_count() / 2);
    }
}
