//! Properties of the declarative `RunSpec` / `Runner` execution API.
//!
//! Two contracts are pinned here:
//!
//! * **text round-trip** — `RunSpec::to_text` followed by
//!   `RunSpec::from_text` yields an *identical* spec, and executing the
//!   reparsed spec reproduces the *identical* outcome (the property a
//!   batch/service layer depends on: a stored scenario is the scenario);
//! * **runner ≡ simulator** — `Runner::execute` on a spec produces exactly
//!   the report a hand-built `Simulator::run` produces for the same
//!   torus, rule and initial configuration, on all three torus kinds;
//! * **content addressing** — `RunSpec::canonical_key` is invariant under
//!   the text round-trip (the service cache contract: the key a client
//!   computes locally addresses the same cache slot server-side), and
//!   `RunOutcome::from_text(to_text(o)) == o` (an outcome survives the
//!   service wire protocol byte-for-byte).

use colored_tori::engine::spec::PatternSpec;
use colored_tori::engine::{EngineOptions, LaneSpec, RunConfig, Simulator};
use colored_tori::prelude::*;
use colored_tori::protocols::registry;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

fn torus_kind() -> impl Strategy<Value = TorusKind> {
    prop_oneof![
        Just(TorusKind::ToroidalMesh),
        Just(TorusKind::TorusCordalis),
        Just(TorusKind::TorusSerpentinus),
    ]
}

fn rule_text() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("smp"),
        Just("prefer-black"),
        Just("prefer-current"),
        Just("strong-majority"),
        Just("threshold(2,2)"),
        Just("irreversible-smp(2)"),
    ]
}

/// A random (but plain-data) seed spec for an `m × n` grid.
fn seed_spec(m: usize, n: usize) -> impl Strategy<Value = SeedSpec> {
    let c = Color::new;
    let nodes = proptest::collection::vec(0..(m * n) as u32, 0..8).prop_map(|mut nodes| {
        nodes.sort_unstable();
        nodes.dedup();
        SeedSpec::Nodes {
            color: Color::BLACK,
            background: Color::WHITE,
            nodes,
        }
    });
    let pattern = prop_oneof![
        Just(SeedSpec::Pattern(PatternSpec::Checkerboard(c(1), c(2)))),
        Just(SeedSpec::Pattern(PatternSpec::ColumnStripes(vec![
            c(1),
            c(2),
            c(3)
        ]))),
        Just(SeedSpec::Pattern(PatternSpec::RowStripes(vec![c(2), c(4)]))),
        Just(SeedSpec::uniform(c(2))),
    ];
    let density =
        (0u64..1_000_000, 0u32..=100).prop_map(move |(rng_seed, percent)| SeedSpec::Density {
            color: c(1),
            palette: 4,
            fraction: f64::from(percent) / 100.0,
            rng_seed,
        });
    prop_oneof![nodes, pattern, density]
}

fn options() -> impl Strategy<Value = EngineOptions> {
    (
        prop_oneof![
            Just(LaneSpec::Auto),
            Just(LaneSpec::GenericFrontier),
            Just(LaneSpec::FullSweep)
        ],
        any::<bool>(),
        0usize..50,
        any::<bool>(),
    )
        .prop_map(|(lane, detect_cycles, max_rounds, track)| EngineOptions {
            lane,
            detect_cycles,
            max_rounds,
            threads: 0,
            progress_every: 0,
            track_times_for: track.then_some(Color::BLACK),
            check_monotone_for: track.then_some(Color::BLACK),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// format → parse → identical spec AND identical outcome.
    #[test]
    fn spec_text_round_trip_reproduces_the_outcome(
        kind in torus_kind(),
        m in 3usize..=7,
        n in 3usize..=7,
        rule in rule_text(),
        opts in options(),
        seed in seed_spec(7, 7),
    ) {
        // Clamp node-list seeds to the actual grid.
        let seed = match seed {
            SeedSpec::Nodes { color, background, nodes } => SeedSpec::Nodes {
                color,
                background,
                nodes: nodes.into_iter().filter(|&v| (v as usize) < m * n).collect(),
            },
            other => other,
        };
        let spec = RunSpec::new(
            TopologySpec::torus(kind, m, n),
            RuleSpec::parse(rule).unwrap(),
            seed,
        )
        .with_options(opts);

        let text = spec.to_text();
        let reparsed = RunSpec::from_text(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(&reparsed, &spec, "text round-trip must be the identity\n{}", text);
        prop_assert_eq!(
            reparsed.canonical_key(),
            spec.canonical_key(),
            "canonical_key must be invariant under the text round-trip\n{}",
            text
        );

        let runner = Runner::with_threads(1);
        let a = runner.execute(&spec);
        let b = runner.execute(&reparsed);
        prop_assert_eq!(a.termination, b.termination);
        prop_assert_eq!(a.rounds, b.rounds);
        prop_assert_eq!(&a.final_coloring, &b.final_coloring);
        prop_assert_eq!(&a.recoloring_times, &b.recoloring_times);
        prop_assert_eq!(a.monotone, b.monotone);
        prop_assert_eq!(a.used_packed_lane, b.used_packed_lane);

        // The outcome itself round-trips through its text form, exactly —
        // the property the service RESULT verb depends on.
        let outcome_text = a.to_text();
        let rebuilt = RunOutcome::from_text(&outcome_text)
            .unwrap_or_else(|e| panic!("outcome reparse failed: {e}\n{outcome_text}"));
        prop_assert_eq!(rebuilt, a, "outcome text round-trip must be the identity");
    }

    /// `Runner::execute` ≡ hand-built `Simulator::run` on all three torus
    /// kinds: same termination, rounds, tracking output and final state.
    #[test]
    fn runner_matches_hand_built_simulator(
        kind in torus_kind(),
        m in 3usize..=8,
        n in 3usize..=8,
        density in 5u8..=70,
        config_seed in any::<u64>(),
        rule in rule_text(),
        track in any::<bool>(),
    ) {
        let torus = Torus::new(kind, m, n);
        let mut rng = StdRng::seed_from_u64(config_seed);
        let mut builder = ColoringBuilder::filled(&torus, Color::WHITE);
        for r in 0..m {
            for c in 0..n {
                if rng.gen_range(0..100u8) < density {
                    builder = builder.cell(r, c, Color::BLACK);
                }
            }
        }
        let coloring = builder.build();

        let options = if track {
            EngineOptions::for_dynamo(Color::BLACK)
        } else {
            EngineOptions::default()
        };
        let spec = RunSpec::new(
            TopologySpec::torus(kind, m, n),
            RuleSpec::parse(rule).unwrap(),
            SeedSpec::Explicit(coloring.clone()),
        )
        .with_options(options);
        let outcome = Runner::with_threads(1).execute(&spec);

        let config = RunConfig {
            max_rounds: 0,
            detect_cycles: true,
            track_times_for: track.then_some(Color::BLACK),
            check_monotone_for: track.then_some(Color::BLACK),
        };
        let mut sim = Simulator::new(&torus, registry::parse(rule).unwrap(), coloring);
        let report = sim.run(&config);

        prop_assert_eq!(outcome.termination, report.termination);
        prop_assert_eq!(outcome.rounds, report.rounds);
        prop_assert_eq!(outcome.recoloring_times, report.recoloring_times);
        prop_assert_eq!(outcome.monotone, report.monotone);
        prop_assert_eq!(outcome.final_target_count, report.final_target_count);
        prop_assert_eq!(outcome.final_coloring, sim.coloring());
        prop_assert_eq!(outcome.used_packed_lane, sim.uses_packed_lane());
    }
}

/// A spot check that the sweep path and the single-execute path agree (the
/// parallel batch introduces no nondeterminism).
#[test]
fn sweep_agrees_with_execute() {
    let grid: Vec<RunSpec> = TorusKind::ALL
        .into_iter()
        .flat_map(|kind| {
            [0.2f64, 0.5].into_iter().map(move |fraction| {
                RunSpec::new(
                    TopologySpec::torus(kind, 6, 6),
                    RuleSpec::parse("smp").unwrap(),
                    SeedSpec::Density {
                        color: Color::new(1),
                        palette: 4,
                        fraction,
                        rng_seed: 7,
                    },
                )
            })
        })
        .collect();
    // An explicit thread budget so the batch genuinely fans out even on
    // single-core machines.
    let parallel = Runner::with_threads(4).sweep(grid.clone());
    for (spec, outcome) in grid.iter().zip(&parallel) {
        let single = Runner::with_threads(1).execute(spec);
        assert_eq!(single.termination, outcome.termination);
        assert_eq!(single.rounds, outcome.rounds);
        assert_eq!(single.final_coloring, outcome.final_coloring);
    }
}
