//! Integration test: every registered experiment reproduces its paper claim
//! in quick mode.  (The full sweeps are exercised by the `ctori-experiments`
//! binary and the benchmark harness.)

use colored_tori::analysis::{all_experiments, Mode};

#[test]
fn every_experiment_reproduces_in_quick_mode() {
    let mut failures = Vec::new();
    for experiment in all_experiments() {
        let record = experiment.run(Mode::Quick);
        if !record.passed {
            failures.push(format!("{}\n{}", experiment.id(), record.render()));
        }
    }
    assert!(
        failures.is_empty(),
        "experiments failed to reproduce:\n{}",
        failures.join("\n")
    );
}

#[test]
fn experiment_ids_cover_every_figure_and_theorem() {
    let ids: Vec<&str> = all_experiments().iter().map(|e| e.id()).collect();
    for required in [
        "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "thm1", "thm2", "thm3", "thm4", "thm5",
        "thm6", "thm7", "thm8", "prop3", "prop12", "tss",
    ] {
        assert!(ids.contains(&required), "missing experiment {required}");
    }
}
