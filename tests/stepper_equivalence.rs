//! Cross-backend equivalence properties for the incremental engine.
//!
//! The simulator has four data paths that must be *exact* optimisations
//! of each other for local rules:
//!
//! * the bit-packed two-colour lane (auto-selected when the rule has a
//!   [`colored_tori::protocols::TwoStateThreshold`] form and at most two
//!   colours are present);
//! * the multi-colour bit-plane lane (auto-selected when a degree-4 torus
//!   run has 3–16 colours and the rule has a
//!   [`colored_tori::protocols::ColorCountRule`] form);
//! * the generic `Vec<Color>` backend with incremental frontier stepping;
//! * the generic backend with the exhaustive full sweep (the PR-1
//!   stepper, kept as the fallback for non-local rules).
//!
//! These properties pin them together round for round on all three torus
//! kinds and every two-state-capable rule in the workspace, and pin the
//! rewritten `tss::diffusion::spread_on` (now a thin wrapper over the
//! engine's packed lane) to the synchronous re-scan reference semantics.

use colored_tori::engine::{RunConfig, Simulator};
use colored_tori::prelude::*;
use colored_tori::protocols::{
    AnyRule, Irreversible, ReverseSimpleMajority, ReverseStrongMajority, SmpProtocol,
    ThresholdRule, TieBreak,
};
use colored_tori::topology::Graph;
use colored_tori::tss::diffusion::{spread, SpreadResult, Thresholds};
use colored_tori::tss::generators::{barabasi_albert, ring_lattice};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

fn torus_kind() -> impl Strategy<Value = TorusKind> {
    prop_oneof![
        Just(TorusKind::ToroidalMesh),
        Just(TorusKind::TorusCordalis),
        Just(TorusKind::TorusSerpentinus),
    ]
}

/// Every rule in the workspace with a two-colour degenerate form; boxed
/// because `Irreversible<SmpProtocol>` is its own type.
fn two_state_rules() -> Vec<Box<dyn LocalRule>> {
    vec![
        Box::new(SmpProtocol),
        Box::new(ReverseSimpleMajority::new(TieBreak::PreferBlack)),
        Box::new(ReverseSimpleMajority::new(TieBreak::PreferCurrent)),
        Box::new(colored_tori::protocols::ReverseStrongMajority),
        Box::new(ThresholdRule::new(Color::BLACK, 2)),
        Box::new(Irreversible::new(SmpProtocol, Color::BLACK)),
    ]
}

/// A random white/black colouring with roughly `density`% black vertices.
fn bicolor_config(torus: &Torus, density: u8, seed: u64) -> Coloring {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = ColoringBuilder::filled(torus, Color::WHITE);
    for r in 0..torus.rows() {
        for c in 0..torus.cols() {
            if rng.gen_range(0..100usize) < density as usize {
                builder = builder.cell(r, c, Color::BLACK);
            }
        }
    }
    builder.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Packed lane ≡ generic frontier ≡ full sweep, round for round, for
    /// every two-state-capable rule on every torus kind.
    #[test]
    fn packed_generic_and_full_sweep_agree_round_for_round(
        kind in torus_kind(),
        m in 3usize..=9,
        n in 3usize..=9,
        density in 5u8..=60,
        seed in any::<u64>(),
    ) {
        let torus = Torus::new(kind, m, n);
        let coloring = bicolor_config(&torus, density, seed);
        for rule in two_state_rules() {
            let mut packed = Simulator::new(&torus, &*rule, coloring.clone());
            let mut generic =
                Simulator::new(&torus, &*rule, coloring.clone()).with_generic_lane();
            let mut sweep = Simulator::new(&torus, &*rule, coloring.clone())
                .with_generic_lane()
                .with_full_sweep();
            // A genuinely two-coloured configuration must select the lane
            // (a monochromatic draw legitimately stays generic).
            if coloring.count(Color::BLACK) > 0 && coloring.count(Color::WHITE) > 0 {
                prop_assert!(
                    packed.uses_packed_lane(),
                    "{} did not select the packed lane", rule.name()
                );
            }
            for round in 0..2 * (m + n) {
                let a = packed.step();
                let b = generic.step();
                let c = sweep.step();
                prop_assert_eq!(
                    a, b,
                    "packed vs generic reports diverge at round {} under {}", round, rule.name()
                );
                prop_assert_eq!(
                    b, c,
                    "generic vs full-sweep reports diverge at round {} under {}",
                    round, rule.name()
                );
                prop_assert_eq!(packed.snapshot(), generic.snapshot());
                prop_assert_eq!(generic.snapshot(), sweep.snapshot());
            }
        }
    }

    /// The lanes also agree through `run`: same termination, same round
    /// count, same tracking output.
    #[test]
    fn run_reports_agree_across_lanes(
        kind in torus_kind(),
        m in 3usize..=8,
        n in 3usize..=8,
        density in 5u8..=60,
        seed in any::<u64>(),
        rule_choice in 0usize..3,
    ) {
        let torus = Torus::new(kind, m, n);
        let coloring = bicolor_config(&torus, density, seed);
        let rule = match rule_choice {
            0 => AnyRule::smp(),
            1 => AnyRule::reverse_simple(TieBreak::PreferBlack),
            _ => AnyRule::Threshold(ThresholdRule::new(Color::BLACK, 2)),
        };
        let config = RunConfig::for_dynamo(Color::BLACK);
        let mut packed = Simulator::new(&torus, rule.clone(), coloring.clone());
        let a = packed.run(&config);
        let mut generic = Simulator::new(&torus, rule, coloring).with_generic_lane();
        let b = generic.run(&config);
        prop_assert_eq!(a.termination, b.termination);
        prop_assert_eq!(a.rounds, b.rounds);
        prop_assert_eq!(a.monotone, b.monotone);
        prop_assert_eq!(a.recoloring_times, b.recoloring_times);
        prop_assert_eq!(a.final_target_count, b.final_target_count);
        prop_assert_eq!(packed.snapshot(), generic.snapshot());
    }
}

/// A random colouring over palette `1..=k`.
fn multicolor_config(torus: &Torus, k: u16, seed: u64) -> Coloring {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = ColoringBuilder::filled(torus, Color::new(1));
    for r in 0..torus.rows() {
        for c in 0..torus.cols() {
            builder = builder.cell(r, c, Color::new(rng.gen_range(1..=k)));
        }
    }
    builder.build()
}

/// Every rule in the workspace with a per-colour counting form —
/// including the strong majority (the only `min_pair = 3` plurality) and
/// prefer-current (plurality behind a tie-break enum), so all compiled
/// plane-kernel decision arms are pinned.
fn counting_rules(k: u16) -> Vec<Box<dyn LocalRule>> {
    vec![
        Box::new(SmpProtocol),
        Box::new(ReverseSimpleMajority::prefer_current()),
        Box::new(ReverseStrongMajority),
        Box::new(ThresholdRule::new(Color::new(k), 2)),
        Box::new(Irreversible::new(SmpProtocol, Color::new(1))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Plane lane ≡ generic frontier ≡ full sweep, round for round, for
    /// every counting-capable rule on every torus kind — including column
    /// counts around the 64-bit word boundary, so wrap-edge tiles and
    /// tail words are exercised.
    #[test]
    fn plane_generic_and_full_sweep_agree_round_for_round(
        kind in torus_kind(),
        m in 3usize..=8,
        n in prop_oneof![3usize..=9, 60usize..=70],
        k in 3u16..=8,
        seed in any::<u64>(),
    ) {
        let torus = Torus::new(kind, m, n);
        let coloring = multicolor_config(&torus, k, seed);
        let distinct = (1..=k)
            .filter(|&c| coloring.count(Color::new(c)) > 0)
            .count();
        for rule in counting_rules(k) {
            let mut planes = Simulator::new(&torus, &*rule, coloring.clone());
            let mut generic =
                Simulator::new(&torus, &*rule, coloring.clone()).with_generic_lane();
            let mut sweep = Simulator::new(&torus, &*rule, coloring.clone())
                .with_generic_lane()
                .with_full_sweep();
            // A genuinely multi-coloured configuration must select the
            // plane lane (a degenerate draw may stay packed or generic).
            if distinct > 2 {
                prop_assert!(
                    planes.uses_plane_lane(),
                    "{} did not select the plane lane", rule.name()
                );
            }
            for round in 0..m + n {
                let a = planes.step();
                let b = generic.step();
                let c = sweep.step();
                prop_assert_eq!(
                    a, b,
                    "planes vs generic reports diverge at round {} under {}",
                    round, rule.name()
                );
                prop_assert_eq!(
                    b, c,
                    "generic vs full-sweep reports diverge at round {} under {}",
                    round, rule.name()
                );
                prop_assert_eq!(planes.snapshot(), generic.snapshot());
                prop_assert_eq!(generic.snapshot(), sweep.snapshot());
            }
        }
    }
}

/// Mostly colour 1 with a noisy stripe and scattered noise: the run
/// starts dense and quiesces, so the per-band dense/sparse hybrid is
/// driven from full sweeps into sparse worklists over the run.
fn quiescing_config(torus: &Torus, k: u16, seed: u64) -> Coloring {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = ColoringBuilder::filled(torus, Color::new(1));
    let stripe = torus.rows() / 2;
    for r in 0..torus.rows() {
        for c in 0..torus.cols() {
            let noisy = r == stripe || r == (stripe + 1) % torus.rows();
            if noisy || rng.gen_range(0..100usize) < 5 {
                builder = builder.cell(r, c, Color::new(rng.gen_range(1..=k)));
            }
        }
    }
    builder.build()
}

/// Thread counts under test: the fixed spread plus whatever
/// `CTORI_TEST_THREADS` asks for (CI runs the suite once with 4).
fn thread_counts() -> impl Strategy<Value = usize> {
    let mut counts = vec![1usize, 2, 3, 8];
    if let Some(n) = std::env::var("CTORI_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        counts.push(n.max(1));
    }
    (0..counts.len()).prop_map(move |i| counts[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Band-parallel stepping is bit-identical to sequential stepping on
    /// every lane: the fast lane (packed for k = 2, planes for k ≥ 3)
    /// and the generic frontier agree with their single-threaded twins
    /// round for round at every thread count, across a run that crosses
    /// the dense→sparse hybrid handoff.
    #[test]
    fn parallel_stepping_matches_sequential_on_every_lane(
        kind in torus_kind(),
        m in 4usize..=8,
        n in 60usize..=70,
        k in prop_oneof![Just(2u16), Just(3), Just(5), Just(8)],
        threads in thread_counts(),
        seed in any::<u64>(),
    ) {
        let torus = Torus::new(kind, m, n);
        let coloring = quiescing_config(&torus, k, seed);
        let mut fast_seq = Simulator::new(&torus, SmpProtocol, coloring.clone());
        let mut fast_par =
            Simulator::new(&torus, SmpProtocol, coloring.clone()).with_step_threads(threads);
        let mut gen_seq =
            Simulator::new(&torus, SmpProtocol, coloring.clone()).with_generic_lane();
        let mut gen_par = Simulator::new(&torus, SmpProtocol, coloring)
            .with_generic_lane()
            .with_step_threads(threads);
        for round in 0..24 {
            let a = fast_seq.step();
            let b = fast_par.step();
            let c = gen_seq.step();
            let d = gen_par.step();
            prop_assert_eq!(
                a, b,
                "fast lane diverges with {} threads at round {} (k={})", threads, round, k
            );
            prop_assert_eq!(
                c, d,
                "generic lane diverges with {} threads at round {} (k={})", threads, round, k
            );
            prop_assert_eq!(a, c, "lanes diverge at round {} (k={})", round, k);
            prop_assert_eq!(fast_seq.snapshot(), fast_par.snapshot());
            prop_assert_eq!(gen_seq.snapshot(), gen_par.snapshot());
            prop_assert_eq!(fast_par.snapshot(), gen_par.snapshot());
            if a.changed == 0 {
                break;
            }
        }
    }
}

/// The runner resolves spec thread counts without ever changing a
/// result: same outcome, same canonical key, and the `round-stats:`
/// observability line round-trips through the text form (and is
/// tolerated when absent, for outcomes recorded before it existed).
#[test]
fn runner_honours_spec_thread_counts() {
    use colored_tori::engine::{
        EngineOptions, RuleSpec, RunOutcome, RunSpec, Runner, SeedSpec, TopologySpec,
    };
    let n: usize = std::env::var("CTORI_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let n = n.max(2);
    let base = RunSpec::new(
        TopologySpec::toroidal_mesh(12, 66),
        RuleSpec::parse("smp").unwrap(),
        SeedSpec::nodes(Color::new(1), Color::new(2), [3, 40, 200, 477]),
    );
    let threaded = base
        .clone()
        .with_options(EngineOptions::default().with_threads(n));
    assert_eq!(
        base.canonical_key(),
        threaded.canonical_key(),
        "threads are excluded from the canonical key"
    );
    let seq = Runner::with_threads(1).execute(&base);
    let par = Runner::with_threads(n).execute(&threaded);
    assert_eq!(seq, par, "outcomes are thread-count independent");
    let stats = par.round_stats.expect("fresh runs carry stats");
    assert_eq!(stats.threads as usize, n);
    assert_eq!(seq.round_stats.expect("fresh runs carry stats").threads, 1);
    let text = par.to_text();
    let parsed = RunOutcome::from_text(&text).unwrap();
    assert_eq!(parsed.round_stats, par.round_stats, "stats round-trip");
    let legacy: String = text
        .lines()
        .filter(|l| !l.starts_with("round-stats:"))
        .map(|l| format!("{l}\n"))
        .collect();
    let old = RunOutcome::from_text(&legacy).unwrap();
    assert!(old.round_stats.is_none(), "pre-stats outcomes still parse");
    assert_eq!(old, par, "stats never participate in outcome equality");
}

/// The synchronous re-scan reference implementation `spread_on` must agree
/// with, round for round (the pre-refactor hand-rolled frontier obeyed the
/// same contract).
fn spread_reference(graph: &Graph, thresholds: &Thresholds, seeds: &[NodeId]) -> SpreadResult {
    let n = graph.node_count();
    let mut active = vec![false; n];
    let mut activation_round = vec![None; n];
    for &s in seeds {
        active[s.index()] = true;
        activation_round[s.index()] = Some(0);
    }
    let mut round = 0usize;
    loop {
        let mut newly: Vec<usize> = Vec::new();
        for v in 0..n {
            if active[v] {
                continue;
            }
            let active_nbrs = graph
                .neighbors_slice(NodeId::new(v))
                .iter()
                .filter(|u| active[u.index()])
                .count();
            if active_nbrs >= thresholds[v] {
                newly.push(v);
            }
        }
        if newly.is_empty() {
            break;
        }
        round += 1;
        for v in newly {
            active[v] = true;
            activation_round[v] = Some(round);
        }
    }
    let activated_count = active.iter().filter(|&&a| a).count();
    SpreadResult {
        activated_count,
        rounds: round,
        complete: activated_count == n,
        activation_round,
    }
}

fn random_graph(family: u8, nodes: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    match family % 3 {
        0 => barabasi_albert(nodes.max(8), 3, &mut rng),
        1 => ring_lattice(nodes.max(8), 2),
        _ => {
            let nodes = nodes.max(8);
            let mut g = Graph::with_nodes(nodes);
            for v in 1..nodes {
                g.add_edge(NodeId::new(v - 1), NodeId::new(v));
            }
            for _ in 0..nodes {
                let u = rng.gen_range(0..nodes);
                let v = rng.gen_range(0..nodes);
                if u != v {
                    g.add_edge(NodeId::new(u), NodeId::new(v));
                }
            }
            g
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The engine-lane `spread_on` is the synchronous re-scan process:
    /// identical activation sets, rounds and per-vertex activation rounds,
    /// including zero thresholds (self-activation in round 1).
    #[test]
    fn spread_on_matches_rescan_reference(
        family in 0u8..3,
        nodes in 8usize..60,
        seed in any::<u64>(),
        threshold in 0usize..4,
        seed_count in 0usize..6,
    ) {
        let graph = random_graph(family, nodes, seed);
        let n = graph.node_count();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
        let seeds: Vec<NodeId> = (0..seed_count.min(n))
            .map(|_| NodeId::new(rng.gen_range(0..n)))
            .collect();
        let thresholds = vec![threshold; n];
        prop_assert_eq!(
            spread(&graph, &thresholds, &seeds),
            spread_reference(&graph, &thresholds, &seeds)
        );
    }
}
