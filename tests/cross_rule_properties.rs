//! Cross-crate property-based tests: invariants that tie the protocol, the
//! engine and the dynamo machinery together on random inputs.

use colored_tori::coloring::random::uniform_random;
use colored_tori::dynamo::blocks::{find_k_blocks, find_non_k_blocks};
use colored_tori::dynamo::phi::phi_collapse;
use colored_tori::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn torus_kind() -> impl Strategy<Value = TorusKind> {
    prop_oneof![
        Just(TorusKind::ToroidalMesh),
        Just(TorusKind::TorusCordalis),
        Just(TorusKind::TorusSerpentinus),
    ]
}

fn small_case() -> impl Strategy<Value = (TorusKind, usize, usize, u64, u16)> {
    (torus_kind(), 3usize..=7, 3usize..=7, any::<u64>(), 2u16..=5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Vertices inside a k-block never change colour, no matter what the
    /// rest of the configuration does (Definition 4's defining property).
    #[test]
    fn k_block_members_are_immortal((kind, m, n, seed, colors) in small_case()) {
        let torus = Torus::new(kind, m, n);
        let palette = Palette::new(colors);
        let mut rng = StdRng::seed_from_u64(seed);
        let coloring = uniform_random(&torus, &palette, &mut rng);
        let k = Color::new(1 + (seed % colors as u64) as u16);

        let blocks = find_k_blocks(&torus, &coloring, k);
        let mut sim = Simulator::new(&torus, SmpProtocol, coloring);
        sim.run(&RunConfig::default().with_max_rounds(4 * m * n));
        for block in blocks {
            for v in block.iter() {
                prop_assert_eq!(sim.color_of(v), k,
                    "k-block member {} lost its colour", v);
            }
        }
    }

    /// Vertices inside a non-k-block never adopt k (Definition 5's defining
    /// property), so a configuration with a non-k-block is never a k-dynamo.
    #[test]
    fn non_k_block_members_never_adopt_k((kind, m, n, seed, colors) in small_case()) {
        let torus = Torus::new(kind, m, n);
        let palette = Palette::new(colors);
        let mut rng = StdRng::seed_from_u64(seed);
        let coloring = uniform_random(&torus, &palette, &mut rng);
        let k = Color::new(1);

        let nblocks = find_non_k_blocks(&torus, &coloring, k);
        let has_nblock = !nblocks.is_empty();
        let mut sim = Simulator::new(&torus, SmpProtocol, coloring.clone());
        let report = sim.run(&RunConfig::default().with_max_rounds(4 * m * n));
        for block in nblocks {
            for v in block.iter() {
                prop_assert_ne!(sim.color_of(v), k,
                    "non-k-block member {} adopted k", v);
            }
        }
        if has_nblock {
            prop_assert!(!report.termination.is_monochromatic_in(k));
        }
    }

    /// The SMP protocol commutes with colour permutations: relabelling the
    /// colours of the initial configuration relabels the final one.
    #[test]
    fn smp_commutes_with_color_permutations((kind, m, n, seed, colors) in small_case()) {
        let torus = Torus::new(kind, m, n);
        let palette = Palette::new(colors);
        let mut rng = StdRng::seed_from_u64(seed);
        let coloring = uniform_random(&torus, &palette, &mut rng);

        // the permutation shifts every colour index by one, cyclically
        let permute = |c: Color| Color::new(1 + (c.index() % colors));
        let rounds = 3usize;

        let mut sim_a = Simulator::new(&torus, SmpProtocol, coloring.clone());
        for _ in 0..rounds {
            sim_a.step();
        }
        let then_permuted = sim_a.coloring().map_colors(permute);

        let mut sim_b = Simulator::new(&torus, SmpProtocol, coloring.map_colors(permute));
        for _ in 0..rounds {
            sim_b.step();
        }
        prop_assert_eq!(then_permuted, sim_b.coloring());
    }

    /// The φ collapse maps k to black and everything else to white, and
    /// preserves the k-census.
    #[test]
    fn phi_collapse_preserves_the_k_census((kind, m, n, seed, colors) in small_case()) {
        let torus = Torus::new(kind, m, n);
        let palette = Palette::new(colors);
        let mut rng = StdRng::seed_from_u64(seed);
        let coloring = uniform_random(&torus, &palette, &mut rng);
        let k = Color::new(colors);
        let collapsed = phi_collapse(&coloring, k);
        prop_assert_eq!(collapsed.count(Color::BLACK), coloring.count(k));
        prop_assert_eq!(
            collapsed.count(Color::WHITE),
            m * n - coloring.count(k)
        );
    }

    /// A simulation under a monotone-wrapped rule never loses k vertices.
    #[test]
    fn irreversible_rule_is_monotone((kind, m, n, seed, colors) in small_case()) {
        use colored_tori::protocols::Irreversible;
        let torus = Torus::new(kind, m, n);
        let palette = Palette::new(colors);
        let mut rng = StdRng::seed_from_u64(seed);
        let coloring = uniform_random(&torus, &palette, &mut rng);
        let k = Color::new(1);
        let rule = Irreversible::new(SmpProtocol, k);
        let mut sim = Simulator::new(&torus, rule, coloring);
        let mut cfg = RunConfig::default().with_max_rounds(4 * m * n);
        cfg.check_monotone_for = Some(k);
        let report = sim.run(&cfg);
        prop_assert_eq!(report.monotone, Some(true));
    }
}
