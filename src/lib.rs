//! # colored-tori
//!
//! Facade crate for the *Dynamic Monopolies in Colored Tori* reproduction
//! (Brunetti, Lodi & Quattrociocchi, IPPS 2011).
//!
//! The workspace is split into focused crates; this facade re-exports them
//! under stable module names so applications can depend on a single crate:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`topology`]  | `ctori-topology`  | toroidal mesh, torus cordalis, torus serpentinus, general graphs |
//! | [`coloring`]  | `ctori-coloring`  | colours, palettes, colourings, patterns, rendering |
//! | [`protocols`] | `ctori-protocols` | SMP-Protocol and the bi-coloured majority baselines |
//! | [`engine`]    | `ctori-engine`    | synchronous simulator, the declarative `RunSpec`/`Runner`/`Observer` API, the `Executor`/`JobHandle` surface with its local worker pool, traces, parallel sweeps |
//! | [`dynamo`]    | `ctori-core`      | blocks, dynamos, bounds, constructions, round formulas, search, figures |
//! | [`tss`]       | `ctori-tss`       | target set selection on general graphs, random graph generators |
//! | [`service`]   | `ctori-service`   | batch simulation service: job scheduler, spec-hash result cache, TCP front-end, the remote `Executor` backend |
//! | [`fleet`]     | `ctori-fleet`     | sharded multi-backend coordinator: consistent-hash routing, health probes, sweep work stealing, fleet-wide stats |
//! | [`analysis`]  | `ctori-analysis`  | the per-figure / per-theorem experiment harness |
//!
//! # Quick start
//!
//! ```
//! use colored_tori::prelude::*;
//!
//! // Build the paper's minimum-size monotone dynamo on a 9x9 toroidal mesh
//! // (Theorem 2 / Figure 2) and verify it by simulation.
//! let k = Color::new(1);
//! let built = theorem2_dynamo(9, 9, k).expect("constructible");
//! assert_eq!(built.seed_size(), 9 + 9 - 2);
//!
//! let report = verify_dynamo(built.torus(), built.coloring(), k);
//! assert!(report.is_monotone_dynamo());
//! assert_eq!(report.rounds, 8);
//!
//! // Any scenario can equally be described as plain data and handed to
//! // the engine's Runner — the declarative path batch sweeps build on:
//! let spec = RunSpec::new(
//!     TopologySpec::toroidal_mesh(9, 9),
//!     RuleSpec::parse("smp").unwrap(),
//!     SeedSpec::Explicit(built.coloring().clone()),
//! )
//! .for_dynamo(k);
//! let outcome = Runner::new().execute(&spec);
//! assert!(outcome.reached_monochromatic(k));
//! assert_eq!(outcome.rounds, 8);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

/// Torus topologies and general graphs (re-export of `ctori-topology`).
pub mod topology {
    pub use ctori_topology::*;
}

/// Colours, palettes and colourings (re-export of `ctori-coloring`).
pub mod coloring {
    pub use ctori_coloring::*;
}

/// Local recolouring rules (re-export of `ctori-protocols`).
pub mod protocols {
    pub use ctori_protocols::*;
}

/// The synchronous simulation engine (re-export of `ctori-engine`).
pub mod engine {
    pub use ctori_engine::*;
}

/// Dynamos, bounds, constructions and figures (re-export of `ctori-core`).
pub mod dynamo {
    pub use ctori_core::*;
}

/// Target set selection substrate (re-export of `ctori-tss`).
pub mod tss {
    pub use ctori_tss::*;
}

/// The batch simulation service (re-export of `ctori-service`).
pub mod service {
    pub use ctori_service::*;
}

/// The sharded multi-backend coordinator (re-export of `ctori-fleet`).
pub mod fleet {
    pub use ctori_fleet::*;
}

/// The experiment harness (re-export of `ctori-analysis`).
pub mod analysis {
    pub use ctori_analysis::*;
}

/// The most commonly used items, importable with a single `use`.
pub mod prelude {
    pub use ctori_coloring::{Color, Coloring, ColoringBuilder, Palette};
    pub use ctori_core::bounds::lower_bound;
    pub use ctori_core::construct::cordalis::theorem4_dynamo;
    pub use ctori_core::construct::mesh::theorem2_dynamo;
    pub use ctori_core::construct::minimum_dynamo;
    pub use ctori_core::construct::serpentinus::theorem6_dynamo;
    pub use ctori_core::dynamo::{verify_dynamo, DynamoReport};
    pub use ctori_core::rounds::{theorem7_rounds, theorem8_rounds};
    pub use ctori_engine::{
        EngineOptions, ExecError, Executor, JobHandle, JobTrace, LaneSpec, LocalExecutor,
        LocalExecutorConfig, MetricsSnapshot, Observer, Registry, RuleSpec, RunConfig, RunEvent,
        RunOutcome, RunSpec, Runner, SeedSpec, Simulator, SpanKind, StepView, SubmitOptions,
        Termination, TopologySpec, TraceObserver,
    };
    pub use ctori_fleet::{FleetConfig, FleetExecutor};
    pub use ctori_protocols::{AnyRule, LocalRule, SmpProtocol};
    pub use ctori_service::RemoteExecutor;
    pub use ctori_topology::{
        toroidal_mesh, torus_cordalis, torus_serpentinus, Coord, NodeId, Topology, Torus, TorusKind,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_modules_are_wired_together() {
        let torus = toroidal_mesh(6, 6);
        let k = Color::new(2);
        let built = minimum_dynamo(TorusKind::ToroidalMesh, 6, 6, k).unwrap();
        assert_eq!(
            built.seed_size(),
            lower_bound(TorusKind::ToroidalMesh, 6, 6)
        );
        let report = verify_dynamo(&torus, built.coloring(), k);
        assert!(report.is_monotone_dynamo());
    }
}
